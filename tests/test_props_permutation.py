"""Property-based tests on the permutation-policy formalism.

These pin down the library's central invariants: random specs survive
the inference round trip, equivalence behaves like an equivalence
relation, and conjugation never changes observable behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PermutationInference, SimulatedSetOracle, equivalent
from repro.core.permutation import specs_equivalent, standard_miss_perm
from repro.policies import PermutationPolicy, PermutationSpec, lru_spec


def permutations_of(size):
    return st.permutations(list(range(size)))


@st.composite
def random_specs(draw, ways=4):
    """Random standard-miss specs (the class inference targets)."""
    hits = tuple(tuple(draw(permutations_of(ways))) for _ in range(ways))
    return PermutationSpec(ways, hits, standard_miss_perm(ways))


@st.composite
def eviction_fixing_relabels(draw, ways=4):
    prefix = draw(st.permutations(list(range(ways - 1))))
    return tuple(prefix) + (ways - 1,)


@given(spec=random_specs())
@settings(max_examples=25, deadline=None)
def test_inference_round_trip(spec):
    """Inference over a black-box random spec recovers an equivalent spec."""
    oracle = SimulatedSetOracle(PermutationPolicy(4, spec))
    result = PermutationInference(oracle).infer()
    assert result.succeeded
    assert equivalent(result.spec, spec)


@given(spec=random_specs(), relabel=eviction_fixing_relabels())
@settings(max_examples=40, deadline=None)
def test_conjugation_preserves_behaviour(spec, relabel):
    """A relabeled spec is observationally equivalent to the original."""
    assert specs_equivalent(spec, spec.conjugate(relabel))


@given(spec=random_specs())
@settings(max_examples=40, deadline=None)
def test_equivalence_reflexive(spec):
    assert specs_equivalent(spec, spec)


@given(first=random_specs(), second=random_specs())
@settings(max_examples=25, deadline=None)
def test_equivalence_symmetric(first, second):
    assert specs_equivalent(first, second) == specs_equivalent(second, first)


@given(spec=random_specs())
@settings(max_examples=30, deadline=None)
def test_canonical_form_is_equivalent_and_stable(spec):
    from repro.core.permutation import canonical_form

    canon = canonical_form(spec)
    assert specs_equivalent(spec, canon)
    assert canonical_form(canon) == canon


@given(spec=random_specs(), relabel=eviction_fixing_relabels())
@settings(max_examples=25, deadline=None)
def test_canonical_form_identifies_conjugates(spec, relabel):
    from repro.core.permutation import canonical_form

    assert canonical_form(spec) == canonical_form(spec.conjugate(relabel))


@given(
    tags=st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=100)
)
@settings(max_examples=60, deadline=None)
def test_lru_spec_tracks_lru_on_any_trace(tags):
    """The analytic LRU spec is trace-equivalent to the list implementation."""
    from repro.cache.set import CacheSet
    from repro.policies import LruPolicy

    spec_set = CacheSet(4, PermutationPolicy(4, lru_spec(4)))
    lru_set = CacheSet(4, LruPolicy(4))
    for tag in tags:
        assert spec_set.access(tag).hit == lru_set.access(tag).hit
