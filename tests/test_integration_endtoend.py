"""End-to-end integration tests: the full paper pipeline in miniature.

These drive the library exactly the way the experiments do — platform,
harness, oracle, inference, naming — on configurations small enough for
the regular test run.  The full-size runs live in benchmarks/.
"""

import pytest

from repro.cache import CacheConfig
from repro.core import VotingOracle, reverse_engineer
from repro.core.inference import InferenceConfig
from repro.hardware import (
    HardwarePlatform,
    HardwareSetOracle,
    LevelSpec,
    NoiseModel,
    ProcessorSpec,
)


def mini_processor(l1="plru", l2="fifo", noise=NoiseModel()):
    return ProcessorSpec(
        name="mini",
        description="integration-test processor",
        levels=(
            LevelSpec(CacheConfig("L1", 4 * 1024, 4), l1),
            LevelSpec(CacheConfig("L2", 32 * 1024, 8, inclusion="inclusive"), l2),
        ),
        noise=noise,
    )


FAST = InferenceConfig(verify_sequences=10, verify_length=40)


class TestFullPipeline:
    @pytest.mark.parametrize(
        "l1,l2",
        [("plru", "fifo"), ("lru", "plru"), ("fifo", "lru")],
    )
    def test_permutation_policies_through_hardware(self, l1, l2):
        platform = HardwarePlatform(mini_processor(l1, l2))
        for level, truth in (("L1", l1), ("L2", l2)):
            oracle = HardwareSetOracle(platform, level, max_blocks=96)
            finding = reverse_engineer(oracle, inference_config=FAST)
            assert finding.policy_name == truth, f"{level}: {finding.summary()}"

    def test_candidate_policy_through_hardware(self):
        platform = HardwarePlatform(mini_processor(l2="bitplru"))
        oracle = HardwareSetOracle(platform, "L2", max_blocks=96)
        finding = reverse_engineer(oracle, inference_config=FAST)
        assert finding.method == "candidate"
        assert finding.policy_name == "bitplru"

    def test_different_sets_agree(self):
        # The policy is the same in every set; inferring two different
        # sets must give the same answer.
        platform = HardwarePlatform(mini_processor())
        findings = []
        for set_index in (3, 11):
            oracle = HardwareSetOracle(platform, "L1", set_index=set_index, max_blocks=96)
            findings.append(reverse_engineer(oracle, inference_config=FAST).policy_name)
        assert findings[0] == findings[1] == "plru"


class TestNoiseRobustness:
    def test_noise_breaks_single_shot(self):
        # With heavy counter noise, plain inference must not silently
        # "succeed": either it fails, or (rarely) the noise cancelled out.
        platform = HardwarePlatform(
            mini_processor(noise=NoiseModel(counter_noise_rate=0.05)), seed=1
        )
        oracle = HardwareSetOracle(platform, "L1", max_blocks=96)
        result_quiet = reverse_engineer(
            HardwareSetOracle(HardwarePlatform(mini_processor()), "L1", max_blocks=96),
            inference_config=FAST,
        )
        assert result_quiet.policy_name == "plru"
        noisy_finding = reverse_engineer(oracle, inference_config=FAST)
        # No assertion that it fails (noise is random), but it must never
        # confidently return a *wrong* named permutation policy.
        if noisy_finding.method == "permutation":
            assert noisy_finding.policy_name in ("plru", None)

    def test_min_voting_with_short_windows_restores_correctness(self):
        # Counter noise is strictly additive, so the min over repeated
        # measurements converges to the true count — provided every
        # measurement keeps a short noise exposure (verify_window).
        platform = HardwarePlatform(
            mini_processor(noise=NoiseModel(counter_noise_rate=0.02)), seed=2
        )
        oracle = VotingOracle(
            HardwareSetOracle(platform, "L1", max_blocks=96),
            repetitions=7,
            aggregate="min",
        )
        config = InferenceConfig(verify_sequences=10, verify_length=40, verify_window=4)
        finding = reverse_engineer(oracle, inference_config=config)
        assert finding.policy_name == "plru"


class TestPrefetcherInterference:
    def test_next_line_prefetch_does_not_corrupt_set_targeting(self):
        # Next-line prefetches land in the neighbouring set, so even an
        # aggressive prefetcher leaves set-targeted inference intact —
        # the property the paper's methodology relies on.
        platform = HardwarePlatform(
            mini_processor(noise=NoiseModel(prefetch_rate=0.3)), seed=3
        )
        oracle = HardwareSetOracle(platform, "L1", max_blocks=96)
        finding = reverse_engineer(oracle, inference_config=FAST)
        assert finding.policy_name == "plru"
