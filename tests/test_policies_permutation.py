"""Tests for permutation specs and the generic permutation policy."""

import pytest

from repro.cache.set import CacheSet
from repro.errors import ConfigurationError
from repro.policies import (
    FifoPolicy,
    LruPolicy,
    PermutationPolicy,
    PermutationSpec,
    fifo_spec,
    lru_spec,
)
from repro.policies.permutation import apply_permutation, compose, identity, invert


class TestPermutationHelpers:
    def test_apply(self):
        assert apply_permutation(["a", "b", "c"], (1, 2, 0)) == ["c", "a", "b"]

    def test_compose_order(self):
        inner = (1, 2, 0)
        outer = (0, 2, 1)
        composed = compose(outer, inner)
        items = ["a", "b", "c"]
        via_two_steps = apply_permutation(apply_permutation(items, inner), outer)
        assert apply_permutation(items, composed) == via_two_steps

    def test_invert(self):
        perm = (2, 0, 1)
        assert compose(perm, invert(perm)) == identity(3)
        assert compose(invert(perm), perm) == identity(3)


class TestSpecValidation:
    def test_rejects_non_permutation_hit(self):
        with pytest.raises(ConfigurationError):
            PermutationSpec(2, ((0, 0), (0, 1)), (1, 0))

    def test_rejects_wrong_count(self):
        with pytest.raises(ConfigurationError):
            PermutationSpec(3, ((0, 1, 2),), (1, 2, 0))

    def test_rejects_bad_miss(self):
        with pytest.raises(ConfigurationError):
            PermutationSpec(2, ((0, 1), (0, 1)), (0, 0))

    def test_properties(self):
        spec = lru_spec(4)
        assert spec.eviction_position == 3
        assert spec.insertion_position == 0

    def test_describe_mentions_vectors(self):
        text = lru_spec(2).describe()
        assert "hit@0" in text and "miss" in text


class TestConjugate:
    def test_must_fix_eviction_position(self):
        with pytest.raises(ConfigurationError):
            lru_spec(3).conjugate((2, 1, 0))

    def test_identity_relabel_is_noop(self):
        spec = lru_spec(4)
        assert spec.conjugate((0, 1, 2, 3)) == spec

    def test_conjugation_roundtrip(self):
        spec = lru_spec(4)
        relabel = (1, 2, 0, 3)
        inverse = (2, 0, 1, 3)
        assert spec.conjugate(relabel).conjugate(inverse) == spec


class TestPermutationPolicyBehaviour:
    def test_lru_spec_equals_lru(self):
        import random

        rng = random.Random(0)
        spec_set = CacheSet(4, PermutationPolicy(4, lru_spec(4)))
        direct_set = CacheSet(4, LruPolicy(4))
        for _ in range(3000):
            tag = rng.randrange(7)
            a, b = spec_set.access(tag), direct_set.access(tag)
            assert a.hit == b.hit and a.evicted_tag == b.evicted_tag

    def test_fifo_spec_equals_fifo(self):
        import random

        rng = random.Random(1)
        spec_set = CacheSet(8, PermutationPolicy(8, fifo_spec(8)))
        direct_set = CacheSet(8, FifoPolicy(8))
        for _ in range(3000):
            tag = rng.randrange(12)
            a, b = spec_set.access(tag), direct_set.access(tag)
            assert a.hit == b.hit and a.evicted_tag == b.evicted_tag

    def test_position_of(self):
        policy = PermutationPolicy(4, lru_spec(4))
        cache_set = CacheSet(4, policy)
        for tag in (1, 2, 3, 4):
            cache_set.access(tag)
        # Most recent fill sits at position 0.
        way_of_4 = cache_set.lookup(4)
        assert policy.position_of(way_of_4) == 0

    def test_spec_ways_must_match(self):
        with pytest.raises(ConfigurationError):
            PermutationPolicy(8, lru_spec(4))

    def test_nonstandard_insertion_position(self):
        # A miss permutation inserting in the middle: survivors above the
        # insertion point rotate towards eviction.
        spec = PermutationSpec(
            ways=3,
            hit_perms=(identity(3),) * 3,
            miss_perm=(0, 2, 1),  # pos1 -> pos2 evictable; new block at pos1
        )
        assert spec.insertion_position == 1
        policy = PermutationPolicy(3, spec)
        cache_set = CacheSet(3, policy)
        for tag in (1, 2, 3):
            cache_set.access(tag)
        # The block at position 0 is never moved by misses under this
        # spec (0 -> 0), so it survives arbitrarily many of them.
        protected_way = policy._order[0]
        protected_tag = cache_set.contents()[protected_way]
        for tag in (10, 11, 12, 13):
            cache_set.access(tag)
        assert cache_set.lookup(protected_tag) is not None
