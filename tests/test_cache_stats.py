"""Tests for statistics counters."""

from repro.cache import CacheStats


class TestRatios:
    def test_zero_accesses(self):
        stats = CacheStats()
        assert stats.miss_ratio == 0.0
        assert stats.hit_ratio == 0.0

    def test_ratios(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.miss_ratio == 0.3
        assert stats.hit_ratio == 0.7


class TestSnapshotDelta:
    def test_snapshot_is_independent(self):
        stats = CacheStats(accesses=1)
        snap = stats.snapshot()
        stats.accesses += 5
        assert snap.accesses == 1

    def test_delta(self):
        stats = CacheStats(accesses=10, misses=4)
        earlier = CacheStats(accesses=3, misses=1)
        delta = stats.delta(earlier)
        assert delta.accesses == 7
        assert delta.misses == 3

    def test_reset(self):
        stats = CacheStats(accesses=5, hits=2, misses=3, evictions=1)
        stats.reset()
        assert stats.accesses == stats.hits == stats.misses == stats.evictions == 0
