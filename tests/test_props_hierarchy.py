"""Property-based tests for hierarchy inclusion invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, CacheHierarchy

traces = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 14) - 1),
        st.booleans(),  # write?
    ),
    max_size=300,
)

l3_inclusions = st.sampled_from(["inclusive", "nine"])
l2_inclusions = st.sampled_from(["inclusive", "exclusive", "nine"])
policies = st.sampled_from(["lru", "plru", "fifo", "bitplru"])


def build(l2_inclusion, l3_inclusion, policy):
    return CacheHierarchy(
        [
            CacheConfig("L1", 512, 2),
            CacheConfig("L2", 2048, 4, inclusion=l2_inclusion),
            CacheConfig("L3", 8192, 8, inclusion=l3_inclusion),
        ],
        [policy, policy, policy],
    )


@given(trace=traces, l2=l2_inclusions, l3=l3_inclusions, policy=policies)
@settings(max_examples=60, deadline=None)
def test_inclusion_invariants_under_arbitrary_traffic(trace, l2, l3, policy):
    """Inclusive levels contain upper levels; exclusive levels overlap none."""
    hierarchy = build(l2, l3, policy)
    for address, write in trace:
        hierarchy.access(address, write=write)
    assert hierarchy.check_inclusion_invariants() == []


@given(trace=traces)
@settings(max_examples=60, deadline=None)
def test_per_level_accounting(trace):
    """Each level's hits+misses equals its accesses; L2 sees only L1 misses."""
    hierarchy = build("nine", "nine", "lru")
    for address, write in trace:
        hierarchy.access(address, write=write)
    l1 = hierarchy.level("L1").stats
    l2 = hierarchy.level("L2").stats
    l3 = hierarchy.level("L3").stats
    assert l1.hits + l1.misses == l1.accesses == len(trace)
    assert l2.accesses == l1.misses
    assert l3.accesses == l2.misses
    assert hierarchy.stats.memory_accesses >= l3.misses


@given(trace=traces)
@settings(max_examples=40, deadline=None)
def test_hit_level_matches_walk(trace):
    """The reported hit level is the first level whose walk entry is a hit."""
    hierarchy = build("nine", "inclusive", "plru")
    for address, write in trace:
        result = hierarchy.access(address, write=write)
        hits = [name for name, hit in result.level_hits if hit]
        if result.hit_level is None:
            assert hits == []
        else:
            assert hits == [result.hit_level]
