"""Tests for simulated virtual memory."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.hardware.memory import HUGE_PAGE_SIZE, VirtualMemory
from repro.util.rng import SeededRng


class TestConstruction:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ConfigurationError):
            VirtualMemory(page_size=3000)

    def test_rejects_misaligned_physical_size(self):
        with pytest.raises(ConfigurationError):
            VirtualMemory(page_size=4096, physical_size=4096 * 3 + 1)

    def test_huge_pages_flag(self):
        assert VirtualMemory(page_size=HUGE_PAGE_SIZE).huge_pages
        assert not VirtualMemory(page_size=4096).huge_pages


class TestAllocation:
    def test_translate_round_trips_within_page(self):
        memory = VirtualMemory(page_size=4096)
        buffer = memory.allocate(8192)
        base_physical = memory.translate(buffer.base)
        assert memory.translate(buffer.base + 100) == base_physical + 100

    def test_huge_pages_contiguous_physical(self):
        memory = VirtualMemory()
        buffer = memory.allocate(8 * HUGE_PAGE_SIZE)
        first = memory.translate(buffer.base)
        for offset in range(0, buffer.size, HUGE_PAGE_SIZE):
            assert memory.translate(buffer.base + offset) == first + offset

    def test_small_pages_fragmented(self):
        memory = VirtualMemory(page_size=4096, rng=SeededRng(1))
        buffer = memory.allocate(64 * 4096)
        physicals = [
            memory.translate(buffer.base + i * 4096) for i in range(64)
        ]
        deltas = {b - a for a, b in zip(physicals, physicals[1:])}
        assert deltas != {4096}  # not an identity mapping

    def test_distinct_allocations_disjoint(self):
        memory = VirtualMemory(page_size=4096)
        a = memory.allocate(4096 * 4)
        b = memory.allocate(4096 * 4)
        pages_a = {memory.translate(a.base + i * 4096) for i in range(4)}
        pages_b = {memory.translate(b.base + i * 4096) for i in range(4)}
        assert not pages_a & pages_b

    def test_unmapped_access_rejected(self):
        memory = VirtualMemory(page_size=4096)
        with pytest.raises(MeasurementError):
            memory.translate(0)  # page zero is never mapped

    def test_zero_size_rejected(self):
        with pytest.raises(MeasurementError):
            VirtualMemory().allocate(0)

    def test_exhaustion_detected(self):
        memory = VirtualMemory(page_size=4096, physical_size=4096 * 8)
        with pytest.raises(MeasurementError):
            memory.allocate(4096 * 100)

    def test_line_addresses_cover_buffer(self):
        memory = VirtualMemory(page_size=4096)
        buffer = memory.allocate(4096)
        lines = list(buffer.line_addresses(64))
        assert len(lines) == 4096 // 64
        assert lines[0] == buffer.base
