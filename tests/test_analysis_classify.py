"""Tests for fixpoint solving and access classification."""

import pytest

from repro.analysis import (
    ALWAYS_HIT,
    ALWAYS_MISS,
    UNCLASSIFIED,
    analyze,
    check_soundness,
    diamond,
    simple_loop,
    solve,
    straight_line,
)
from repro.cache import CacheConfig

CONFIG = CacheConfig("L1", 1024, 4)  # 4 sets, 4-way
STRIDE = CONFIG.way_size


class TestStraightLine:
    def test_repeat_access_is_always_hit(self):
        program = straight_line([[0x100, 0x100]])
        result = analyze(program, CONFIG)
        assert result.verdict_of("B0", 0) == ALWAYS_MISS  # cold
        assert result.verdict_of("B0", 1) == ALWAYS_HIT

    def test_conflicting_accesses_age_out(self):
        accesses = [k * STRIDE for k in range(5)] + [0]
        program = straight_line([accesses])
        result = analyze(program, CONFIG)
        assert result.verdict_of("B0", 5) == ALWAYS_MISS  # 0 was evicted


class TestDiamond:
    def test_must_requires_both_branches(self):
        # Only the then-branch touches 0x40: after the join it is not
        # guaranteed, but it may be cached -> unclassified.
        program = diamond([0], [0x40], [0x80], [0x40])
        result = analyze(program, CONFIG)
        assert result.verdict_of("after", 0) == UNCLASSIFIED

    def test_common_access_survives_join(self):
        program = diamond([0x40], [0], [0x80], [0x40])
        result = analyze(program, CONFIG)
        assert result.verdict_of("after", 0) == ALWAYS_HIT

    def test_untouched_line_is_always_miss(self):
        program = diamond([0], [0x40], [0x80], [0xC0])
        result = analyze(program, CONFIG)
        assert result.verdict_of("after", 0) == ALWAYS_MISS


class TestLoop:
    def test_loop_body_reuse_unclassified_then_hit(self):
        # body touches the same line every iteration: the first pass
        # misses, later passes hit -> the single verdict is unclassified;
        # but a line touched in the preheader is always-hit in the body.
        program = simple_loop([0], [0, 0x40])
        result = analyze(program, CONFIG)
        assert result.verdict_of("body", 0) == ALWAYS_HIT
        assert result.verdict_of("body", 1) == UNCLASSIFIED

    def test_loop_thrashing_is_not_guaranteed(self):
        # Five conflicting lines in a 4-way set can evict each other.
        body = [k * STRIDE for k in range(5)]
        program = simple_loop([], body)
        result = analyze(program, CONFIG)
        for index in range(5):
            assert result.verdict_of("body", index) != ALWAYS_HIT


class TestFixpoint:
    def test_loop_reaches_fixpoint(self):
        program = simple_loop([0], [0x40, 0x80])
        states = solve(program, CONFIG, "must")
        assert set(states) == {"pre", "body", "exit"}
        # The preheader line stays guaranteed at the body entry.
        assert states["body"].contains(0)

    def test_unreachable_block_keeps_cold_state(self):
        from repro.analysis import BasicBlock, Program

        program = Program(
            blocks={
                "a": BasicBlock("a", (0,)),
                "zombie": BasicBlock("zombie", (64,)),
            },
            edges={},
            entry="a",
        )
        states = solve(program, CONFIG, "must")
        assert states["zombie"].key() == ()


class TestResultApi:
    def test_counts_and_fraction(self):
        program = straight_line([[0x100, 0x100, 0x140]])
        result = analyze(program, CONFIG)
        counts = result.counts()
        assert counts[ALWAYS_HIT] == 1
        assert counts[ALWAYS_MISS] == 2
        assert result.guaranteed_hit_fraction == pytest.approx(1 / 3)

    def test_unknown_site_raises(self):
        program = straight_line([[0]])
        result = analyze(program, CONFIG)
        with pytest.raises(KeyError):
            result.verdict_of("B0", 5)


class TestSoundnessHarness:
    def test_sound_on_loop(self):
        program = simple_loop([0], [0, 0x40, 0x80])
        result = analyze(program, CONFIG)
        assert check_soundness(program, CONFIG, result, paths=30) == []

    def test_detects_planted_violation(self):
        from repro.analysis.classify import AccessClassification, AnalysisResult

        program = straight_line([[0x100]])
        bogus = AnalysisResult(
            classifications=(
                AccessClassification("B0", 0, 0x100, ALWAYS_HIT),
            ),
            capacity=4,
        )
        assert check_soundness(program, CONFIG, bogus, paths=1) != []
