"""Vector engine, mmap store and batch-accounting tests.

Four concerns, mirroring the contract in :mod:`repro.kernels.vector`:

* **Equivalence** — every vector entry point (batched queries,
  preloaded-probe batches, whole-trace lock-step) is bit-identical to
  the scalar kernel and the interpreter, including the awkward shapes:
  empty setups/probes, duplicate queries, single-query batches,
  non-power-of-two batch sizes.
* **Counters** — the batch path's ``kernel.*`` accounting reconciles
  exactly with the per-query path (``accesses = hits + misses`` in every
  mode; snapshot reuse reported as ``kernel.setup_reused``), whichever
  engine ran.
* **Store** — mmap loads are zero-copy, counted, and equal to buffered
  loads; concurrent-worker races (artifact replaced or removed mid-load,
  sweeps racing deletions) degrade to recompile, never raise.
* **Fallback** — with numpy gone every vector entry point returns None
  and the scalar engines carry on, bit-identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig
from repro.cache.set import CacheSet
from repro.core.oracle import CachingOracle, SimulatedSetOracle
from repro.kernels import (
    clear_compile_cache,
    compile_policy,
    count_misses_batch,
    count_misses_kernel,
    kernel_disabled,
    sequence_hits,
    sequence_hits_batch,
    sequence_hits_preloaded,
    sequence_hits_preloaded_batch,
    store,
    trie_disabled,
    try_simulate_trace,
    vector,
    vector_disabled,
)
from repro.obs import metrics as obs_metrics
from repro.policies import LruPolicy, make_policy
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace
from tests.conftest import all_deterministic_policies

WAYS = 4

numpy_only = pytest.mark.skipif(
    not vector.available(), reason="numpy not installed"
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_compile_cache()
    yield
    clear_compile_cache()


@pytest.fixture
def tiny_lanes(monkeypatch):
    """Force the vector engine onto even single-query batches."""
    monkeypatch.setattr(vector, "MIN_LANES", 1)
    monkeypatch.setattr(vector, "MIN_TRACE_LANES", 1)


policy_names = st.sampled_from([name for name, _ in all_deterministic_policies(WAYS)])
blocks = st.lists(st.integers(min_value=0, max_value=11), max_size=40)
query_lists = st.lists(st.tuples(blocks, blocks), min_size=1, max_size=23)


def build(name, ways=WAYS):
    if name == "permutation":
        from repro.policies import lru_spec

        return make_policy(name, ways, spec=lru_spec(ways))
    return make_policy(name, ways)


# -- equivalence: batched (setup, probe) queries -----------------------------

@numpy_only
@given(name=policy_names, queries=query_lists)
@settings(max_examples=80, deadline=None)
def test_batch_outcomes_bit_identical(name, queries):
    """Vector batches == scalar batches == per-query scalar runs."""
    compiled = compile_policy(build(name))
    expected = [
        sequence_hits(compiled, setup, probe) for setup, probe in queries
    ]
    with vector_disabled():
        scalar = sequence_hits_batch(compiled, queries)
    assert scalar == expected
    vector.MIN_LANES = 1
    try:
        assert sequence_hits_batch(compiled, queries) == expected
    finally:
        vector.MIN_LANES = 64


@numpy_only
@given(name=policy_names, queries=query_lists)
@settings(max_examples=60, deadline=None)
def test_batch_miss_counts_match_interpreter(name, queries):
    compiled = compile_policy(build(name))
    vector.MIN_LANES = 1
    try:
        counts = count_misses_batch(compiled, queries)
    finally:
        vector.MIN_LANES = 64
    with kernel_disabled():
        oracle = SimulatedSetOracle(build(name))
        assert counts == [
            oracle.count_misses(setup, probe) for setup, probe in queries
        ]


@numpy_only
def test_batch_edge_shapes(tiny_lanes):
    """Empty setups/probes, duplicates, single-query batches."""
    compiled = compile_policy(LruPolicy(WAYS))
    cases = [
        [([], [])],                              # single, fully empty
        [([], [1, 2, 1])],                       # single, empty setup
        [([1, 2], [])],                          # single, empty probe
        [([1, 2], [3, 1])] * 7,                  # duplicates share a setup
        [([], []), ([], []), ([1], [1])],        # empties then content
        [([i], [i, i + 1]) for i in range(17)],  # non-power-of-two lanes
    ]
    for queries in cases:
        expected = [
            sequence_hits(compiled, setup, probe) for setup, probe in queries
        ]
        assert sequence_hits_batch(compiled, queries) == expected


@numpy_only
def test_batch_falls_back_on_huge_ids(tiny_lanes):
    """Block ids beyond the int64 lane range retreat to scalar, same result."""
    compiled = compile_policy(LruPolicy(WAYS))
    big = 1 << 70
    queries = [([big], [big, 1]) for _ in range(4)]
    expected = [sequence_hits(compiled, s, p) for s, p in queries]
    assert sequence_hits_batch(compiled, queries) == expected


@numpy_only
@given(name=policy_names, probes=st.lists(blocks, min_size=1, max_size=19))
@settings(max_examples=60, deadline=None)
def test_preloaded_batch_bit_identical(name, probes):
    compiled = compile_policy(build(name))
    tags = [100 + way for way in range(WAYS)]
    expected = [
        sequence_hits_preloaded(compiled, tags, probe) for probe in probes
    ]
    vector.MIN_LANES = 1
    try:
        assert sequence_hits_preloaded_batch(compiled, tags, probes) == expected
    finally:
        vector.MIN_LANES = 64


# -- equivalence: whole-trace lock-step --------------------------------------

def _random_trace(lines, length, seed):
    rng = SeededRng(seed).fork("trace")
    return Trace(
        f"rand-{seed}", tuple(rng.randrange(lines) * 64 for _ in range(length))
    )


@numpy_only
@pytest.mark.parametrize("index_hash", ["bits", "xor-fold"])
@pytest.mark.parametrize("name", [n for n, _ in all_deterministic_policies(4)])
def test_trace_lockstep_bit_identical(name, index_hash, tiny_lanes):
    from repro.policies import PolicyFactory, lru_spec

    config = CacheConfig("t", 4 * 1024, 4, index_hash=index_hash)  # 16 sets
    trace = _random_trace(lines=180, length=3000, seed=7)
    compiled = compile_policy(build(name, 4))
    stats = vector.simulate_trace_lockstep(trace, config, compiled)
    assert stats is not None
    kwargs = {"spec": lru_spec(4)} if name == "permutation" else {}
    cache = Cache(config, PolicyFactory(name, **kwargs))
    for address in trace:
        cache.access(address)
    assert stats == cache.stats


@numpy_only
def test_trace_routing_engages_vector(tiny_lanes):
    obs_metrics.DEFAULT.reset()
    config = CacheConfig("t", 4 * 1024, 4)
    trace = _random_trace(lines=64, length=800, seed=3)
    stats = try_simulate_trace(trace, config, "lru")
    assert stats is not None
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert counters["kernel.vector.calls"] == 1
    # The trace-mode kernel counters are engine-invariant.
    assert counters["kernel.calls.trace"] == 1
    assert counters["kernel.accesses"] == stats.accesses
    assert counters["kernel.hits"] == stats.hits
    assert counters["kernel.misses"] == stats.misses
    assert counters["kernel.accesses"] == counters["kernel.hits"] + counters["kernel.misses"]


@numpy_only
def test_trace_lockstep_respects_disable():
    config = CacheConfig("t", 4 * 1024, 4)
    trace = _random_trace(lines=64, length=400, seed=5)
    compiled = compile_policy(LruPolicy(4))
    with vector_disabled():
        assert vector.simulate_trace_lockstep(trace, config, compiled) is None


def test_trace_scalar_path_when_tracer_active():
    """A tracer keeps the scalar trace engine (per-state detail source)."""
    from repro.obs import tracing

    config = CacheConfig("t", 4 * 1024, 4)
    trace = _random_trace(lines=64, length=400, seed=5)
    obs_metrics.DEFAULT.reset()
    with tracing(include=("kernel.",)) as tracer:
        stats = try_simulate_trace(trace, config, "lru")
    assert stats is not None
    assert [e for e in tracer.events if e["kind"] == "kernel.run"]
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert "kernel.vector.calls" not in counters


# -- counter accounting ------------------------------------------------------

QUERIES = (
    [(list(range(WAYS)), [5, 0, 6, 1])] * 5
    + [([7, 8], [7, 9, 8])] * 3
    + [([], [1, 1, 2])]
)


def _counters():
    return obs_metrics.DEFAULT.snapshot()["counters"]


@pytest.mark.parametrize("engine", ["scalar", "vector"])
def test_batch_counters_reconcile_with_per_query(engine, tiny_lanes):
    """accesses = hits + misses per mode; batch == per-query modulo reuse.

    This pins the *batched engines'* accounting, so the trie planner —
    which has its own, further-relaxed reconciliation (see
    tests/test_kernel_trie.py) — is held off.
    """
    if engine == "vector" and not vector.available():
        pytest.skip("numpy not installed")
    compiled = compile_policy(LruPolicy(WAYS))

    obs_metrics.DEFAULT.reset()
    per_query = [count_misses_kernel(compiled, s, p) for s, p in QUERIES]
    single = _counters()
    assert single["kernel.accesses"] == single["kernel.hits"] + single["kernel.misses"]
    assert "kernel.setup_reused" not in single

    obs_metrics.DEFAULT.reset()
    if engine == "scalar":
        with trie_disabled(), vector_disabled():
            batched = count_misses_batch(compiled, QUERIES)
    else:
        with trie_disabled():
            batched = count_misses_batch(compiled, QUERIES)
    batch = _counters()
    assert batched == per_query
    assert batch["kernel.accesses"] == batch["kernel.hits"] + batch["kernel.misses"]
    # The only difference between the paths is the skipped setup replays.
    assert (
        batch["kernel.accesses"] + batch["kernel.setup_reused"]
        == single["kernel.accesses"]
    )
    # Reconcile hits too: each reused setup would have replayed the same
    # hit pattern, so the skipped hits are per-setup hits times reuses.
    skipped_hits = 0
    with kernel_disabled():
        for setup, reuses in ((tuple(range(WAYS)), 4), ((7, 8), 2), ((), 0)):
            cache_set = CacheSet(WAYS, LruPolicy(WAYS))
            setup_hits = sum(1 for b in setup if cache_set.access(b).hit)
            skipped_hits += setup_hits * reuses
    assert batch["kernel.hits"] + skipped_hits == single["kernel.hits"]


@numpy_only
def test_vector_counters_flush(tiny_lanes):
    obs_metrics.DEFAULT.reset()
    compiled = compile_policy(LruPolicy(WAYS))
    with trie_disabled():  # the vector batch path, not the planner
        count_misses_batch(compiled, QUERIES)
    counters = _counters()
    assert counters["kernel.vector.calls"] == 1
    assert counters["kernel.vector.lanes"] == len(QUERIES)
    assert counters["kernel.vector.accesses"] == counters["kernel.accesses"]


def test_oracle_batch_costs_identical_across_engines():
    """query(): oracle cost accounting is engine-invariant."""
    results = {}
    for mode in ("vector", "scalar", "interpreter"):
        clear_compile_cache()
        oracle = SimulatedSetOracle(LruPolicy(WAYS))
        if mode == "interpreter":
            with kernel_disabled():
                counts = oracle.query(QUERIES)
        elif mode == "scalar":
            with vector_disabled():
                counts = oracle.query(QUERIES)
        else:
            counts = oracle.query(QUERIES)
        results[mode] = (counts, oracle.measurements, oracle.accesses)
    assert results["vector"] == results["scalar"] == results["interpreter"]


# -- CachingOracle memo keys -------------------------------------------------

class _CountingOracle(SimulatedSetOracle):
    def __init__(self):
        super().__init__(LruPolicy(WAYS))
        self.calls = []

    def count_misses(self, setup, probe):
        self.calls.append((tuple(setup), tuple(probe)))
        return super().count_misses(setup, probe)


def test_caching_oracle_boundary_shift_no_collision():
    """([1],[2,3]) and ([1,2],[3]) concatenate equally but never alias."""
    inner = _CountingOracle()
    oracle = CachingOracle(inner)
    first = oracle.count_misses([1], [2, 3])
    second = oracle.count_misses([1, 2], [3])
    assert first == 2 and second == 1  # different answers, same concatenation
    assert oracle.cache_misses == 2 and oracle.cache_hits == 0
    assert len(inner.calls) == 2
    # And the batch path keys identically to the sequential path.
    assert oracle.query([([1], [2, 3]), ([1, 2], [3])]) == [2, 1]
    assert oracle.cache_hits == 2
    assert len(inner.calls) == 2


def test_caching_oracle_memo_key_is_nested():
    key = CachingOracle.memo_key([1, 2], [3])
    assert key == ((1, 2), (3,))
    assert CachingOracle.memo_key([1], [2, 3]) != key


# -- store: mmap loading -----------------------------------------------------

@pytest.fixture
def store_dir(tmp_path):
    store.set_cache_dir(tmp_path)
    yield tmp_path
    store.set_cache_dir(None)


def _persist_lru(store_dir):
    compiled = compile_policy(LruPolicy(WAYS))
    key = store.factory_key("lru", (), WAYS)
    assert store.save(key, compiled)
    return key, compiled


def test_mmap_load_equals_buffered_load(store_dir):
    key, original = _persist_lru(store_dir)
    mapped = store.load(key)
    with store.mmap_disabled():
        buffered = store.load(key)
    assert mapped is not None and buffered is not None
    assert list(mapped.hit_next) == list(buffered.hit_next) == original.hit_next
    assert list(mapped.miss_victim) == list(buffered.miss_victim)
    assert mapped.num_states == buffered.num_states == original.num_states
    assert mapped.frozen and buffered.frozen
    # Mapped automata drive the scalar engine identically.
    probe = [5, 0, 6, 1, 2, 7]
    assert sequence_hits(mapped, list(range(WAYS)), probe) == sequence_hits(
        original, list(range(WAYS)), probe
    )


def test_mmap_load_counters(store_dir):
    key, _ = _persist_lru(store_dir)
    obs_metrics.DEFAULT.reset()
    assert store.load(key) is not None
    counters = _counters()
    assert counters["kernel.mmap.loads"] == 1
    assert counters["kernel.mmap.bytes"] == store.artifact_path(key).stat().st_size
    obs_metrics.DEFAULT.reset()
    with store.mmap_disabled():
        assert store.load(key) is not None
    assert "kernel.mmap.loads" not in _counters()


@numpy_only
def test_mmap_load_attaches_vector_tables(store_dir):
    key, _ = _persist_lru(store_dir)
    mapped = store.load(key)
    assert mapped.vector_tables is not None
    assert vector.ensure_tables(mapped) is mapped.vector_tables
    # Zero-copy: the numpy view aliases the same values as the lists.
    assert mapped.vector_tables.hit_next.tolist() == list(mapped.hit_next)


# -- store: concurrent-worker races ------------------------------------------

def test_corrupt_artifact_unlinked_once(store_dir):
    key, _ = _persist_lru(store_dir)
    path = store.artifact_path(key)
    path.write_bytes(b"not an artifact")
    assert store.load(key) is None
    assert not path.exists()


def test_corrupt_unlink_skipped_when_replaced(store_dir, monkeypatch):
    """A worker replacing the artifact mid-load keeps its fresh copy."""
    key, compiled = _persist_lru(store_dir)
    path = store.artifact_path(key)
    good = path.read_bytes()
    path.write_bytes(b"garbage from a torn write")

    real_open = open
    swapped = []

    def racing_open(file, *args, **kwargs):
        handle = real_open(file, *args, **kwargs)
        if not swapped and str(file) == str(path):
            swapped.append(True)
            # Another worker re-persists a good artifact after we opened
            # the corrupt one (atomic os.replace, so a new inode).
            tmp = path.with_suffix(".rewrite")
            tmp.write_bytes(good)
            import os as _os

            _os.replace(tmp, path)
        return handle

    monkeypatch.setattr("builtins.open", racing_open)
    assert store.load(key) is None  # the corrupt bytes we read don't parse
    monkeypatch.undo()
    assert path.exists()  # ...but the replacement was NOT deleted
    assert path.read_bytes() == good
    assert store.load(key) is not None


def test_corrupt_unlink_tolerates_removal(store_dir, monkeypatch):
    """The artifact vanishing before the unlink is not an error."""
    key, _ = _persist_lru(store_dir)
    path = store.artifact_path(key)
    path.write_bytes(b"junk")
    real_stat = store.os.stat

    def racing_stat(target, *args, **kwargs):
        if str(target) == str(path):
            path.unlink(missing_ok=True)
        return real_stat(target, *args, **kwargs)

    monkeypatch.setattr(store.os, "stat", racing_stat)
    assert store.load(key) is None  # FileNotFoundError suppressed


def test_clear_tolerates_concurrent_removal(store_dir, monkeypatch):
    _persist_lru(store_dir)
    paths = list(store._sweep_paths(store.cache_dir()))
    assert paths
    for path in paths:
        path.unlink()  # another worker swept first
    assert store.clear() == 0  # no raise, nothing left to count


def test_clear_tolerates_unlink_errors(store_dir, monkeypatch):
    key, _ = _persist_lru(store_dir)

    def denied(self, *args, **kwargs):
        raise PermissionError("locked by another worker")

    monkeypatch.setattr(type(store.artifact_path(key)), "unlink", denied)
    assert store.clear() == 0  # suppressed, not raised


def test_stats_tolerates_concurrent_removal(store_dir):
    key, _ = _persist_lru(store_dir)
    store.artifact_path(key).unlink()
    info = store.stats()
    assert info["entries"] == 0


# -- no-numpy fallback -------------------------------------------------------

class TestNoNumpyFallback:
    @pytest.fixture(autouse=True)
    def _without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)

    def test_everything_returns_none(self):
        compiled = compile_policy(LruPolicy(WAYS))
        assert not vector.available()
        assert not vector.vector_allowed()
        assert vector.batch_outcomes(compiled, [([], [1])] * 16) is None
        assert vector.preloaded_outcomes(compiled, [0, 1, 2, 3], [[1]] * 16) is None
        config = CacheConfig("t", 4 * 1024, 4)
        trace = _random_trace(lines=16, length=100, seed=1)
        assert vector.simulate_trace_lockstep(trace, config, compiled) is None

    def test_ensure_tables_tombstones(self):
        compiled = compile_policy(LruPolicy(WAYS))
        assert vector.ensure_tables(compiled) is None
        assert compiled.vector_tables is False  # probe ran once, memoized

    def test_engine_paths_still_bit_identical(self):
        compiled = compile_policy(LruPolicy(WAYS))
        queries = [(list(range(WAYS)), [5, 0, 6, 1])] * 9
        expected = [sequence_hits(compiled, s, p) for s, p in queries]
        assert sequence_hits_batch(compiled, queries) == expected
        tags = [10, 11, 12, 13]
        probes = [[14, 10, 15], [11, 12]] * 5
        assert sequence_hits_preloaded_batch(compiled, tags, probes) == [
            sequence_hits_preloaded(compiled, tags, probe) for probe in probes
        ]

    def test_store_load_without_numpy(self, store_dir):
        key, original = _persist_lru(store_dir)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.vector_tables is None  # no numpy views attached
        assert list(loaded.hit_next) == original.hit_next


# -- switches ----------------------------------------------------------------

def test_vector_enable_disable_switch():
    from repro.kernels import set_vector_enabled, vector_enabled

    assert vector_enabled()
    set_vector_enabled(False)
    try:
        assert not vector_enabled()
        assert not vector.vector_allowed()
    finally:
        set_vector_enabled(True)
    with vector_disabled():
        assert not vector_enabled()
    assert vector_enabled()


def test_cli_vector_flag_parses():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["evaluate", "--policies", "lru"])
    assert args.vector is True
    args = parser.parse_args(["evaluate", "--policies", "lru", "--no-vector"])
    assert args.vector is False
