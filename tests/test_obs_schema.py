"""Golden test: emitted events match the OBSERVABILITY.md schema table.

The event table in OBSERVABILITY.md is the contract trace consumers
program against.  This test parses that table out of the document,
exercises every emitting layer, and asserts in both directions:

* every event kind the code emits is documented, and carries no fields
  beyond its documented set (``span.start`` excepted — it is documented
  as open to caller fields);
* every documented kind and every documented field is actually
  produced somewhere, so the table cannot rot.
"""

import re
from pathlib import Path

import pytest

from repro.cache import CacheConfig
from repro.core import InferenceConfig, PermutationInference, SimulatedSetOracle
from repro.core.identify import CandidateIdentification
from repro.core.oracle import VotingOracle
from repro.kernels import clear_compile_cache, try_simulate_trace
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.trace import tracing
from repro.policies import PolicyFactory, get
from repro.runner import ExperimentRunner
from repro.workloads import cyclic_loop

DOC = Path(__file__).parent.parent / "OBSERVABILITY.md"

#: Kinds documented as carrying arbitrary extra (caller-supplied) fields.
OPEN_KINDS = {"span.start"}

#: Fields documented as conditional (not on every event of the kind).
OPTIONAL_FIELDS = {
    "infer.phase": {"seconds"},   # end events only
    "kernel.run": {"states"},     # trace mode only
    "span.start": {"parent"},     # always present, may be None
}


def golden_schema() -> dict[str, set[str]]:
    """Parse the event table out of OBSERVABILITY.md: kind -> field set."""
    schema: dict[str, set[str]] = {}
    in_table = False
    for line in DOC.read_text().splitlines():
        if line.startswith("| kind |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if len(cells) != 3 or set(cells[0]) <= {"-", " "}:
                continue
            kind_match = re.search(r"`([^`]+)`", cells[0])
            if not kind_match:
                continue
            fields = set()
            for part in cells[2].split(","):
                field_match = re.search(r"`([^`]+)`", part)
                if field_match:
                    fields.add(field_match.group(1))
            schema[kind_match.group(1)] = fields
    return schema


def _double(x):
    return 2 * x


def collect_events() -> list[dict]:
    """Exercise every emitting layer; return all accepted events."""
    obs_metrics.DEFAULT.reset()
    obs_spans.reset()
    events: list[dict] = []

    # cache.* (hit/miss/evict/fill), oracle.query, oracle.vote — the
    # full-fidelity tracer forces the interpreted path.
    with tracing() as tracer:
        oracle = VotingOracle(SimulatedSetOracle(get("lru", 2)), repetitions=3)
        oracle.count_misses([0, 1], [0, 5, 0])
    events += tracer.events

    # infer.start / infer.phase / infer.verify / infer.end.
    with tracing() as tracer:
        PermutationInference(
            SimulatedSetOracle(get("lru", 2)),
            config=InferenceConfig(verify_sequences=2),
        ).infer()
    events += tracer.events

    # identify.start / identify.candidate / identify.end.
    with tracing() as tracer:
        CandidateIdentification(SimulatedSetOracle(get("lru", 2)), ways=2).identify()
    events += tracer.events

    # runner.scheduled / runner.cell and span.start / span.end.
    with tracing() as tracer:
        ExperimentRunner().map(_double, [1, 2], labels=["a", "b"])
        with obs_spans.span("unit", note="golden"):
            pass
    events += tracer.events

    # runner.retry: a lambda cannot be pickled, so every chunk fails and
    # is retried before the serial fallback completes the map.
    with tracing() as tracer:
        ExperimentRunner(jobs=2, retries=1).map(lambda x: x, [1, 2, 3, 4])
    events += tracer.events

    # kernel.run in both compiled-trace and direct mode (the cold-path
    # include filter leaves the kernel engaged), plus kernel.compile for
    # the cold resolutions (cleared caches force a BFS miss and an
    # unsupported resolution).
    clear_compile_cache()
    with tracing(include=("kernel.",)) as tracer:
        trace = cyclic_loop(32, iterations=2)
        config = CacheConfig("L1", 1024, 2)
        assert try_simulate_trace(trace, config, PolicyFactory("lru"), 0) is not None
        assert try_simulate_trace(trace, config, PolicyFactory("random"), 0) is not None
    events += tracer.events

    return events


@pytest.fixture(scope="module")
def observed():
    return collect_events()


@pytest.fixture(scope="module")
def schema():
    table = golden_schema()
    assert table, "could not parse the event table out of OBSERVABILITY.md"
    return table


def test_every_emitted_kind_is_documented(observed, schema):
    emitted = {e["kind"] for e in observed}
    undocumented = emitted - set(schema)
    assert not undocumented, f"undocumented event kinds: {sorted(undocumented)}"


def test_every_documented_kind_is_emitted(observed, schema):
    emitted = {e["kind"] for e in observed}
    unexercised = set(schema) - emitted
    assert not unexercised, f"documented but never emitted: {sorted(unexercised)}"


def test_event_fields_match_the_table(observed, schema):
    seen_fields: dict[str, set[str]] = {}
    for event in observed:
        kind = event["kind"]
        fields = set(event) - {"seq", "kind"}
        seen_fields.setdefault(kind, set()).update(fields)
        if kind in OPEN_KINDS:
            continue
        extra = fields - schema[kind]
        assert not extra, f"{kind} carries undocumented fields: {sorted(extra)}"
        missing = schema[kind] - fields - OPTIONAL_FIELDS.get(kind, set())
        assert not missing, f"{kind} is missing documented fields: {sorted(missing)}"
    for kind, documented in schema.items():
        never_seen = documented - seen_fields[kind]
        assert not never_seen, (
            f"{kind}: documented fields never emitted: {sorted(never_seen)}"
        )


def test_every_event_has_monotone_seq_and_kind(observed):
    assert all("seq" in e and "kind" in e for e in observed)
