"""Tests for the Trace type and its file format."""

import pytest

from repro.errors import TraceFormatError
from repro.workloads import Trace


class TestTrace:
    def test_basic_properties(self):
        trace = Trace("t", (0, 64, 64, 128))
        assert len(trace) == 4
        assert list(trace) == [0, 64, 64, 128]
        assert trace.footprint_lines == 3

    def test_rejects_negative_addresses(self):
        with pytest.raises(TraceFormatError):
            Trace("bad", (0, -64))

    def test_concat(self):
        combined = Trace("a", (0,)).concat(Trace("b", (64,)))
        assert combined.addresses == (0, 64)
        assert combined.name == "a+b"

    def test_repeat(self):
        repeated = Trace("a", (0, 64)).repeat(3)
        assert repeated.addresses == (0, 64) * 3
        with pytest.raises(ValueError):
            Trace("a", (0,)).repeat(0)

    def test_from_lines(self):
        trace = Trace.from_lines("t", [0, 1, 5])
        assert trace.addresses == (0, 64, 5 * 64)


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        original = Trace("roundtrip", (0x100, 0x200, 0x100))
        path = tmp_path / "trace.txt"
        original.save(path)
        loaded = Trace.load(path)
        assert loaded == original
        assert loaded.name == "roundtrip"

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# a comment\n\n0x40\n# another\n64\n")
        trace = Trace.load(path)
        assert trace.addresses == (0x40, 64)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mytrace.txt"
        path.write_text("0x40\n")
        assert Trace.load(path).name == "mytrace"

    def test_malformed_line_reported_with_location(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0x40\nnot-an-address\n")
        with pytest.raises(TraceFormatError, match="bad.txt:2"):
            Trace.load(path)
