"""Tests for tree pseudo-LRU."""

import pytest

from repro.cache.set import CacheSet
from repro.errors import ConfigurationError
from repro.policies import LruPolicy, PlruPolicy


class TestConstruction:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PlruPolicy(6)

    def test_valid_sizes(self):
        for ways in (2, 4, 8, 16):
            assert PlruPolicy(ways).ways == ways


class TestTwoWayEqualsLru:
    def test_identical_behaviour(self):
        # With one tree bit, PLRU and LRU are the same policy.
        import random

        rng = random.Random(0)
        plru_set = CacheSet(2, PlruPolicy(2))
        lru_set = CacheSet(2, LruPolicy(2))
        for _ in range(500):
            tag = rng.randrange(4)
            assert plru_set.access(tag).hit == lru_set.access(tag).hit


class TestTreeBehaviour:
    def test_victim_follows_bits(self):
        policy = PlruPolicy(4)
        # All bits zero -> leftmost leaf is the victim.
        assert policy.evict() == 0

    def test_access_points_away(self):
        policy = PlruPolicy(4)
        policy.touch(0)
        # After touching way 0, the victim must be in the right subtree.
        assert policy.evict() in (2, 3)

    def test_fill_sequence_cycles_subtrees(self):
        policy = PlruPolicy(4)
        victims = []
        for _ in range(4):
            victim = policy.evict()
            victims.append(victim)
            policy.fill(victim)
        # Successive victims alternate between the two subtrees.
        subtrees = [v // 2 for v in victims]
        assert subtrees[0] != subtrees[1]
        assert subtrees[1] != subtrees[2] or subtrees[0] != subtrees[1]

    def test_not_true_lru(self):
        # The classic PLRU anomaly: a hit can protect a line that true
        # LRU would evict; find a divergence on some trace.
        import random

        rng = random.Random(1)
        diverged = False
        plru_set = CacheSet(4, PlruPolicy(4))
        lru_set = CacheSet(4, LruPolicy(4))
        for _ in range(2000):
            tag = rng.randrange(6)
            if plru_set.access(tag).hit != lru_set.access(tag).hit:
                diverged = True
                break
        assert diverged

    def test_hit_and_fill_update_identically(self):
        a, b = PlruPolicy(8), PlruPolicy(8)
        a.touch(5)
        b.fill(5)
        assert a.state_key() == b.state_key()

    def test_clone_reset(self):
        policy = PlruPolicy(8)
        policy.touch(3)
        copy = policy.clone()
        policy.reset()
        assert policy.state_key() == tuple([0] * 7)
        assert copy.state_key() != policy.state_key()
