"""Tests for the one-bit policies: bit-PLRU (MRU) and NRU."""

from repro.cache.set import CacheSet
from repro.policies import BitPlruPolicy, NruPolicy


class TestBitPlru:
    def test_victim_is_leftmost_zero(self):
        policy = BitPlruPolicy(4)
        policy.touch(0)
        assert policy.evict() == 1

    def test_saturation_resets_others(self):
        policy = BitPlruPolicy(4)
        for way in (0, 1, 2):
            policy.touch(way)
        assert policy.state_key() == (1, 1, 1, 0)
        policy.touch(3)  # would saturate: others reset, 3 keeps its bit
        assert policy.state_key() == (0, 0, 0, 1)

    def test_full_cycle(self):
        policy = BitPlruPolicy(2)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)
        cache_set.access(2)  # saturation: bit of way0 cleared, way1 set
        assert cache_set.access(3).evicted_tag == 1

    def test_eviction_always_possible(self):
        # The invariant: after any access there is always a zero bit.
        import random

        rng = random.Random(0)
        policy = BitPlruPolicy(4)
        cache_set = CacheSet(4, policy)
        for _ in range(1000):
            cache_set.access(rng.randrange(7))
        assert 0 in policy.state_key() or not cache_set.full


class TestNru:
    def test_victim_is_leftmost_zero(self):
        policy = NruPolicy(4)
        policy.touch(0)
        policy.touch(1)
        assert policy.evict() == 2

    def test_saturated_state_clears_lazily(self):
        policy = NruPolicy(2)
        policy.touch(0)
        policy.touch(1)
        assert policy.state_key() == (1, 1)  # saturation persists...
        assert policy.evict() == 0  # ...until a victim is needed
        assert policy.state_key() == (0, 0)

    def test_differs_from_bitplru(self):
        # NRU saturates silently, bit-PLRU resets eagerly: observable
        # difference after saturation.
        nru, bit = NruPolicy(2), BitPlruPolicy(2)
        for policy in (nru, bit):
            policy.touch(0)
            policy.touch(1)
        assert nru.state_key() != bit.state_key()

    def test_clone_independent(self):
        policy = NruPolicy(4)
        policy.touch(2)
        copy = policy.clone()
        policy.touch(3)
        assert copy.state_key() == (0, 0, 1, 0)
