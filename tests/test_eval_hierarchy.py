"""Tests for whole-hierarchy evaluation."""

import pytest

from repro.cache import CacheConfig
from repro.errors import ConfigurationError
from repro.eval import compare_policy_assignments, evaluate_hierarchy
from repro.workloads import Trace, cyclic_loop


def configs():
    return [
        CacheConfig("L1", 1024, 2),  # 16 lines
        CacheConfig("L2", 8192, 4),  # 128 lines
    ]


LATENCIES = {"L1": 4, "L2": 12, "memory": 100}


class TestEvaluateHierarchy:
    def test_all_hits_cost_l1_latency(self):
        trace = cyclic_loop(8, iterations=50)  # fits in L1
        result = evaluate_hierarchy(trace, configs(), ["lru", "lru"], LATENCIES)
        assert result.level_miss_ratios["L1"] == pytest.approx(8 / 400)
        # AMAT approaches the L1 latency as cold misses amortise.
        assert result.amat < 4 + 5

    def test_l2_bound_workload(self):
        trace = cyclic_loop(64, iterations=20)  # fits L2, thrashes L1
        result = evaluate_hierarchy(trace, configs(), ["lru", "lru"], LATENCIES)
        assert result.level_miss_ratios["L1"] == 1.0
        assert result.level_miss_ratios["L2"] < 0.1
        assert 16 - 2 < result.amat < 16 + 10  # ~L1+L2 latency

    def test_memory_bound_workload(self):
        trace = cyclic_loop(1024, iterations=3)  # thrashes both levels
        result = evaluate_hierarchy(trace, configs(), ["lru", "lru"], LATENCIES)
        assert result.memory_accesses == len(trace)
        assert result.amat == pytest.approx(4 + 12 + 100)

    def test_label_defaults_to_policy_names(self):
        trace = cyclic_loop(4, iterations=2)
        result = evaluate_hierarchy(trace, configs(), ["lru", "fifo"], LATENCIES)
        assert result.label == "lru+fifo"

    def test_missing_latency_rejected(self):
        trace = cyclic_loop(4, iterations=2)
        with pytest.raises(ConfigurationError):
            evaluate_hierarchy(trace, configs(), ["lru", "lru"], {"L1": 4, "memory": 100})
        with pytest.raises(ConfigurationError):
            evaluate_hierarchy(trace, configs(), ["lru", "lru"], {"L1": 4, "L2": 12})

    def test_row_rendering(self):
        trace = cyclic_loop(4, iterations=2)
        result = evaluate_hierarchy(trace, configs(), ["lru", "lru"], LATENCIES)
        row = result.row(["L1", "L2"])
        assert row[0] == "lru+lru"
        assert len(row) == 5  # label, 2 ratios, memory ratio, amat


class TestCompareAssignments:
    def test_policy_choice_shows_in_amat(self):
        # Thrash L2 with a loop just above its capacity: LIP in L2 wins.
        trace = cyclic_loop(160, iterations=20)
        results = compare_policy_assignments(
            trace,
            configs(),
            {"classic": ["lru", "lru"], "insertion": ["lru", "lip"]},
            LATENCIES,
        )
        by_label = {r.label: r for r in results}
        assert by_label["insertion"].amat < by_label["classic"].amat

    def test_wrong_arity_rejected(self):
        trace = cyclic_loop(4, iterations=2)
        with pytest.raises(ConfigurationError):
            compare_policy_assignments(trace, configs(), {"bad": ["lru"]}, LATENCIES)
