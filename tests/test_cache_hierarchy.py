"""Tests for multi-level hierarchies."""

import pytest

from repro.cache import CacheConfig, CacheHierarchy
from repro.errors import ConfigurationError


def two_level(l2_inclusion="nine"):
    return CacheHierarchy(
        [
            CacheConfig("L1", 512, 2),  # 4 sets
            CacheConfig("L2", 2048, 4, inclusion=l2_inclusion),  # 8 sets
        ],
        ["lru", "lru"],
    )


def three_level():
    return CacheHierarchy(
        [
            CacheConfig("L1", 512, 2),
            CacheConfig("L2", 2048, 4),
            CacheConfig("L3", 8192, 8, inclusion="inclusive"),
        ],
        ["lru", "lru", "lru"],
    )


class TestConstruction:
    def test_requires_levels(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([], [])

    def test_policy_count_must_match(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy([CacheConfig("L1", 512, 2)], ["lru", "lru"])

    def test_first_level_cannot_be_exclusive(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                [CacheConfig("L1", 512, 2, inclusion="exclusive")], ["lru"]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                [CacheConfig("L1", 512, 2), CacheConfig("L1", 2048, 4)],
                ["lru", "lru"],
            )

    def test_level_lookup(self):
        hierarchy = two_level()
        assert hierarchy.level("L2").config.size == 2048
        with pytest.raises(KeyError):
            hierarchy.level("L9")


class TestAccessRouting:
    def test_cold_miss_reaches_memory_and_fills_all(self):
        hierarchy = two_level()
        result = hierarchy.access(0x100)
        assert result.served_by_memory
        assert hierarchy.level("L1").probe(0x100)
        assert hierarchy.level("L2").probe(0x100)
        assert hierarchy.stats.memory_accesses == 1

    def test_l1_hit_stops_walk(self):
        hierarchy = two_level()
        hierarchy.access(0x100)
        result = hierarchy.access(0x100)
        assert result.hit_level == "L1"
        assert hierarchy.level("L2").stats.accesses == 1  # only the first walk

    def test_l2_hit_refills_l1(self):
        hierarchy = two_level()
        hierarchy.access(0x100)
        hierarchy.level("L1").invalidate(0x100)
        result = hierarchy.access(0x100)
        assert result.hit_level == "L2"
        assert hierarchy.level("L1").probe(0x100)

    def test_level_hits_recorded_in_walk_order(self):
        hierarchy = two_level()
        result = hierarchy.access(0x100)
        assert [name for name, _ in result.level_hits] == ["L1", "L2"]
        assert [hit for _, hit in result.level_hits] == [False, False]


class TestInclusive:
    def test_l3_eviction_back_invalidates(self):
        hierarchy = three_level()
        l3 = hierarchy.level("L3")
        stride = l3.config.way_size
        victim_address = 0
        hierarchy.access(victim_address)
        # Thrash the same L3 set until the first line is evicted.
        for k in range(1, l3.config.ways + 1):
            hierarchy.access(victim_address + k * stride)
        assert not l3.probe(victim_address)
        assert not hierarchy.level("L1").probe(victim_address)
        assert not hierarchy.level("L2").probe(victim_address)

    def test_inclusion_invariant_holds_under_random_traffic(self):
        import random

        rng = random.Random(0)
        hierarchy = three_level()
        for _ in range(5000):
            hierarchy.access(rng.randrange(1 << 16) & ~0x3F)
        assert hierarchy.check_inclusion_invariants() == []


class TestExclusive:
    def test_demand_miss_bypasses_exclusive_level(self):
        hierarchy = two_level(l2_inclusion="exclusive")
        hierarchy.access(0x100)
        assert hierarchy.level("L1").probe(0x100)
        assert not hierarchy.level("L2").probe(0x100)

    def test_l1_victim_lands_in_exclusive_l2(self):
        hierarchy = two_level(l2_inclusion="exclusive")
        stride = hierarchy.level("L1").config.way_size
        hierarchy.access(0)
        hierarchy.access(stride)
        hierarchy.access(2 * stride)  # evicts 0 from L1 into L2
        assert not hierarchy.level("L1").probe(0)
        assert hierarchy.level("L2").probe(0)

    def test_exclusive_hit_migrates_up(self):
        hierarchy = two_level(l2_inclusion="exclusive")
        stride = hierarchy.level("L1").config.way_size
        hierarchy.access(0)
        hierarchy.access(stride)
        hierarchy.access(2 * stride)  # 0 now only in L2
        result = hierarchy.access(0)
        assert result.hit_level == "L2"
        assert hierarchy.level("L1").probe(0)
        assert not hierarchy.level("L2").probe(0)

    def test_exclusive_invariant_holds_under_random_traffic(self):
        import random

        rng = random.Random(1)
        hierarchy = two_level(l2_inclusion="exclusive")
        for _ in range(5000):
            hierarchy.access(rng.randrange(1 << 14) & ~0x3F)
        assert hierarchy.check_inclusion_invariants() == []


class TestWrites:
    def test_dirty_victim_written_back_to_lower_level(self):
        hierarchy = two_level()
        stride = hierarchy.level("L1").config.way_size
        hierarchy.access(0, write=True)
        hierarchy.access(stride)
        hierarchy.access(2 * stride)  # evicts dirty 0 from L1; L2 holds it
        assert hierarchy.level("L1").stats.writebacks == 1
        # No memory traffic beyond the three demand fetches.
        assert hierarchy.stats.memory_accesses == 3


class TestMaintenance:
    def test_reset(self):
        hierarchy = two_level()
        hierarchy.access(0x100)
        hierarchy.reset()
        assert hierarchy.stats.memory_accesses == 0
        assert hierarchy.level("L1").stats.accesses == 0
        assert not hierarchy.level("L1").probe(0x100)


class TestHashedLastLevel:
    def test_hashed_l3_hierarchy_consistent(self):
        import random

        hierarchy = CacheHierarchy(
            [
                CacheConfig("L1", 512, 2),
                CacheConfig("L2", 2048, 4),
                CacheConfig(
                    "L3", 8192, 8, inclusion="inclusive", index_hash="xor-fold"
                ),
            ],
            ["lru", "lru", "lru"],
        )
        rng = random.Random(3)
        for _ in range(5000):
            hierarchy.access(rng.randrange(1 << 16) & ~0x3F)
        assert hierarchy.check_inclusion_invariants() == []

    def test_back_invalidation_with_hashed_index(self):
        hierarchy = CacheHierarchy(
            [
                CacheConfig("L1", 512, 2),
                CacheConfig(
                    "L2", 2048, 4, inclusion="inclusive", index_hash="xor-fold"
                ),
            ],
            ["lru", "lru"],
        )
        codec = hierarchy.level("L2").codec
        victim = 0
        hierarchy.access(victim)
        # Thrash the victim's hashed L2 set until it is evicted there.
        partners = [codec.same_set_address(codec.decompose(victim).set_index, k)
                    for k in range(1, 6)]
        for address in partners:
            hierarchy.access(address)
        assert not hierarchy.level("L2").probe(victim)
        assert not hierarchy.level("L1").probe(victim)
