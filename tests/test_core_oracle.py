"""Tests for measurement oracles."""

import pytest

from repro.core import CachingOracle, SimulatedSetOracle, VotingOracle
from repro.errors import MeasurementError
from repro.policies import LruPolicy


class TestSimulatedSetOracle:
    def test_counts_misses_from_fresh_state(self):
        oracle = SimulatedSetOracle(LruPolicy(2))
        assert oracle.count_misses([], [1, 2, 1]) == 2
        # Measurements are independent: the same call repeats identically.
        assert oracle.count_misses([], [1, 2, 1]) == 2

    def test_setup_not_counted(self):
        oracle = SimulatedSetOracle(LruPolicy(2))
        assert oracle.count_misses([1, 2], [1, 2]) == 0
        assert oracle.count_misses([1, 2], [3]) == 1

    def test_cost_accounting(self):
        oracle = SimulatedSetOracle(LruPolicy(2))
        oracle.count_misses([1], [2, 3])
        oracle.count_misses([], [4])
        assert oracle.measurements == 2
        assert oracle.accesses == 4
        oracle.reset_cost()
        assert oracle.measurements == 0
        assert oracle.accesses == 0

    def test_ways_exposure(self):
        assert SimulatedSetOracle(LruPolicy(4)).ways == 4
        assert SimulatedSetOracle(LruPolicy(4), expose_ways=False).ways is None


class _FlakyOracle(SimulatedSetOracle):
    """Returns a wrong count every other measurement."""

    def __init__(self, policy):
        super().__init__(policy)
        self._calls = 0

    def count_misses(self, setup, probe):
        true_value = super().count_misses(setup, probe)
        self._calls += 1
        if self._calls % 2 == 0:
            return true_value + 1
        return true_value


class TestVotingOracle:
    def test_majority_suppresses_minority_noise(self):
        flaky = _FlakyOracle(LruPolicy(2))
        voting = VotingOracle(flaky, repetitions=5)
        # 3 of 5 votes are correct.
        assert voting.count_misses([], [1, 2, 1]) == 2

    def test_repetitions_validated(self):
        with pytest.raises(MeasurementError):
            VotingOracle(SimulatedSetOracle(LruPolicy(2)), repetitions=0)

    def test_majority_short_circuits_at_strict_majority(self):
        # A noiseless oracle reaches floor(3/2)+1 = 2 identical votes
        # after two repetitions; the third cannot change the outcome and
        # is skipped.
        inner = SimulatedSetOracle(LruPolicy(2))
        voting = VotingOracle(inner, repetitions=3)
        voting.count_misses([], [1])
        assert voting.measurements == 2
        voting.reset_cost()
        assert voting.measurements == 0

    def test_min_counts_every_repetition(self):
        # Only majority can stop early; min/median need every sample.
        inner = SimulatedSetOracle(LruPolicy(2))
        voting = VotingOracle(inner, repetitions=3, aggregate="min")
        voting.count_misses([], [1])
        assert voting.measurements == 3

    def test_majority_short_circuit_preserves_result(self):
        # The short-circuited vote equals the full vote on a noisy inner
        # oracle: once a count holds a strict majority the remaining
        # repetitions are arithmetically irrelevant.
        for reps in (3, 5, 7):
            flaky = _FlakyOracle(LruPolicy(2))
            voting = VotingOracle(flaky, repetitions=reps)
            assert voting.count_misses([], [1, 2, 1]) == 2

    def test_forwards_ways(self):
        voting = VotingOracle(SimulatedSetOracle(LruPolicy(8)))
        assert voting.ways == 8


class TestCachingOracle:
    def test_repeats_served_from_cache(self):
        inner = SimulatedSetOracle(LruPolicy(2))
        oracle = CachingOracle(inner)
        assert oracle.count_misses([], [1, 2, 1]) == 2
        assert oracle.count_misses([], [1, 2, 1]) == 2
        # The second call never reached the inner oracle.
        assert inner.measurements == 1
        assert oracle.cache_hits == 1
        assert oracle.cache_misses == 1

    def test_distinct_queries_all_measured(self):
        oracle = CachingOracle(SimulatedSetOracle(LruPolicy(2)))
        oracle.count_misses([], [1])
        oracle.count_misses([1], [1])
        oracle.count_misses([], [2])
        assert oracle.cache_hits == 0
        assert oracle.cache_misses == 3

    def test_query_dedupes_within_batch(self):
        oracle = CachingOracle(SimulatedSetOracle(LruPolicy(2)))
        results = oracle.query(
            [([], [1, 2, 1]), ([], [1, 2, 1]), ([1, 2], [3])]
        )
        assert results == [2, 2, 1]
        assert oracle.measurements == 2

    def test_clear_cache(self):
        oracle = CachingOracle(SimulatedSetOracle(LruPolicy(2)))
        oracle.count_misses([], [1])
        oracle.clear_cache()
        assert oracle.cache_hits == 0 and oracle.cache_misses == 0
        oracle.count_misses([], [1])
        assert oracle.measurements == 2  # re-measured after the clear

    def test_cost_accounting_delegates(self):
        oracle = CachingOracle(SimulatedSetOracle(LruPolicy(2)))
        oracle.count_misses([1], [2, 3])
        assert oracle.measurements == 1
        assert oracle.accesses == 3
        oracle.count_misses([1], [2, 3])  # cached: cost must not move
        assert oracle.measurements == 1
        assert oracle.accesses == 3
        oracle.reset_cost()
        assert oracle.measurements == 0
        assert oracle.accesses == 0

    def test_forwards_ways(self):
        assert CachingOracle(SimulatedSetOracle(LruPolicy(8))).ways == 8

    def test_voting_inside_cache_memoizes_denoised_values(self):
        # The documented composition for noisy oracles: denoise first,
        # memoize the stable value.
        flaky = _FlakyOracle(LruPolicy(2))
        oracle = CachingOracle(VotingOracle(flaky, repetitions=5))
        first = oracle.count_misses([], [1, 2, 1])
        assert first == 2
        assert oracle.count_misses([], [1, 2, 1]) == first
        assert oracle.cache_hits == 1


class _AdditiveNoiseOracle(SimulatedSetOracle):
    """Adds a deterministic positive bias on some repetitions."""

    def __init__(self, policy, extras):
        super().__init__(policy)
        self._extras = list(extras)
        self._call = 0

    def count_misses(self, setup, probe):
        true_value = super().count_misses(setup, probe)
        extra = self._extras[self._call % len(self._extras)]
        self._call += 1
        return true_value + extra


class TestVotingAggregates:
    def test_min_recovers_truth_under_additive_noise(self):
        # Majority would return a polluted mode here; min cannot.
        noisy = _AdditiveNoiseOracle(LruPolicy(2), extras=[2, 1, 0, 3, 2])
        voting = VotingOracle(noisy, repetitions=5, aggregate="min")
        assert voting.count_misses([], [1, 2, 1]) == 2

    def test_median_robust_to_outliers(self):
        noisy = _AdditiveNoiseOracle(LruPolicy(2), extras=[0, 0, 9])
        voting = VotingOracle(noisy, repetitions=3, aggregate="median")
        assert voting.count_misses([], [1, 2, 1]) == 2

    def test_majority_with_mostly_clean_runs(self):
        noisy = _AdditiveNoiseOracle(LruPolicy(2), extras=[0, 0, 0, 5, 7])
        voting = VotingOracle(noisy, repetitions=5, aggregate="majority")
        assert voting.count_misses([], [1, 2, 1]) == 2

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(MeasurementError):
            VotingOracle(SimulatedSetOracle(LruPolicy(2)), aggregate="mean")
