"""Tests for repro.util.rng."""

from repro.util.rng import SeededRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = [SeededRng(42).randint(0, 1000) for _ in range(1)]
        second = [SeededRng(42).randint(0, 1000) for _ in range(1)]
        assert first == second

    def test_long_streams_match(self):
        a, b = SeededRng(7), SeededRng(7)
        assert [a.random() for _ in range(100)] == [b.random() for _ in range(100)]

    def test_different_seeds_differ(self):
        a = [SeededRng(1).random() for _ in range(10)]
        b = [SeededRng(2).random() for _ in range(10)]
        assert a != b


class TestFork:
    def test_fork_is_deterministic(self):
        a = SeededRng(5).fork("child").random()
        b = SeededRng(5).fork("child").random()
        assert a == b

    def test_fork_labels_decorrelate(self):
        parent = SeededRng(5)
        assert parent.fork("x").random() != parent.fork("y").random()

    def test_fork_independent_of_parent_consumption(self):
        parent_a = SeededRng(9)
        parent_b = SeededRng(9)
        parent_b.random()  # consume from one parent only
        assert parent_a.fork("c").random() == parent_b.fork("c").random()


class TestHelpers:
    def test_permutation_is_permutation(self):
        rng = SeededRng(3)
        for size in (1, 2, 5, 16):
            perm = rng.permutation(size)
            assert sorted(perm) == list(range(size))

    def test_sample_distinct(self):
        rng = SeededRng(3)
        sample = rng.sample(range(100), 10)
        assert len(set(sample)) == 10

    def test_choice_member(self):
        rng = SeededRng(3)
        items = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(items) in items

    def test_randrange_bounds(self):
        rng = SeededRng(3)
        values = [rng.randrange(5) for _ in range(200)]
        assert set(values) == {0, 1, 2, 3, 4}
