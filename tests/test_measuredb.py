"""The persistent measurement DB, its service layer, and the DB oracle.

Three layers under test (see ``repro.measuredb``):

* :class:`MeasurementDB` — WAL sqlite store: round trips, upserts,
  corruption fallback, disabled mode, maintenance;
* :class:`OracleService` / :class:`ResponseCache` — preloading,
  batching, in-flight coalescing, write-back, ``db.*`` counters;
* :class:`MeasurementDBOracle` — provenance gating and the logical
  cost accounting that keeps cold and warm inference results
  bit-identical.

Plus the concurrency contract: N writer processes share one database
through WAL, a writer killed mid-transaction loses only its own batch,
and ``--jobs N`` runner workers produce results bit-identical to serial.
"""

from __future__ import annotations

import multiprocessing
import os
import sqlite3

import pytest

from repro import measuredb
from repro.core.inference import PermutationInference
from repro.core.oracle import SimulatedSetOracle, VotingOracle
from repro.errors import MeasurementError
from repro.measuredb import db as mdb
from repro.obs import metrics as obs_metrics
from repro.policies import make_policy
from repro.runner import ExperimentRunner
from repro.util.rng import SeededRng

SCOPE = "sim|policy:lru|()|ways=4"


@pytest.fixture(autouse=True)
def _fresh_metrics():
    """Counter assertions below need a per-test zero point."""
    obs_metrics.DEFAULT.reset()
    yield


def _counters() -> dict:
    return obs_metrics.DEFAULT.snapshot().get("counters", {})


def _row(setup, probe, misses, hits=None):
    return (mdb.request_digest(setup, probe), len(setup), len(probe), misses, hits)


class TestRequestDigest:
    def test_nested_pair_invariant(self):
        # Same concatenation, different split -> different measurements.
        assert mdb.request_digest([1], [2, 3]) != mdb.request_digest([1, 2], [3])

    def test_sequence_type_agnostic(self):
        assert mdb.request_digest([1, 2], (3,)) == mdb.request_digest((1, 2), [3])


class TestDirectoryRules:
    def test_follows_automaton_store(self, tmp_path):
        from repro.kernels import store

        store.set_cache_dir(tmp_path / "shared")
        assert mdb.db_dir() == tmp_path / "shared"
        assert mdb.db_path().name == mdb.DB_FILENAME

    def test_explicit_override_wins(self, tmp_path):
        mdb.set_db_dir(tmp_path / "explicit")
        assert mdb.db_dir() == tmp_path / "explicit"
        mdb.set_db_dir(None)
        assert mdb.db_dir() != tmp_path / "explicit"

    def test_get_db_tracks_directory_changes(self, tmp_path):
        mdb.set_db_dir(tmp_path / "one")
        first = mdb.get_db()
        mdb.set_db_dir(tmp_path / "two")
        second = mdb.get_db()
        assert first is not second
        assert second.path.parent == tmp_path / "two"


class TestMeasurementDB:
    def test_round_trip(self, tmp_path):
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        rows = [_row([0, 1], [2], 1), _row([], [0, 1, 2, 3], 4)]
        assert database.put_many(SCOPE, rows) == 2
        digests = [row[0] for row in rows]
        found = database.get_many(SCOPE, digests)
        assert found[digests[0]] == (1, None)
        assert found[digests[1]] == (4, None)
        assert database.get_many("other-scope", digests) == {}
        assert set(database.load_scope(SCOPE)) == set(digests)

    def test_upsert_fills_without_clobbering(self, tmp_path):
        # A miss-count write and a hit-vector write to the same row must
        # merge, not erase each other's column.
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        digest = mdb.request_digest((), [0, 1])
        database.put_many(SCOPE, [(digest, 0, 2, 2, None)])
        database.put_many(SCOPE, [(digest, 0, 2, None, b"\x00\x00")])
        assert database.get_many(SCOPE, [digest])[digest] == (2, b"\x00\x00")

    def test_clear_by_scope_and_all(self, tmp_path):
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        database.put_many("a", [_row([], [0], 1)])
        database.put_many("b", [_row([], [1], 1)])
        assert database.clear("a") == 1
        assert database.load_scope("a") == {}
        assert len(database.load_scope("b")) == 1
        assert database.clear() == 1

    def test_export_rows(self, tmp_path):
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        database.put_many(SCOPE, [_row([9], [0, 1], 2, b"\x00\x00")])
        (row,) = list(database.export_rows())
        assert row["scope"] == SCOPE
        assert (row["setup_len"], row["probe_len"]) == (1, 2)
        assert row["misses"] == 2
        assert row["hits"] == [0, 0]
        assert list(database.export_rows("no-such-scope")) == []

    def test_stats(self, tmp_path):
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        database.put_many("a", [_row([], [0], 1), _row([], [1], 0)])
        info = database.stats()
        assert info["total_rows"] == 2
        assert info["scopes"] == [{"scope": "a", "rows": 2}]
        assert info["schema_version"] == mdb.SCHEMA_VERSION
        assert info["enabled"] is True
        assert info["total_bytes"] > 0

    def test_disabled_mode_is_pass_through(self, tmp_path):
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        with mdb.db_disabled():
            assert database.put_many(SCOPE, [_row([], [0], 1)]) == 0
            assert database.get_many(SCOPE, [mdb.request_digest([], [0])]) == {}
        assert not (tmp_path / mdb.DB_FILENAME).exists()

    def test_corrupt_file_recovers_once(self, tmp_path):
        path = tmp_path / mdb.DB_FILENAME
        database = mdb.MeasurementDB(path)
        rows = [_row([], [0], 1)]
        database.put_many(SCOPE, rows)
        database.close()
        path.write_bytes(b"this is not a sqlite database" * 64)
        reopened = mdb.MeasurementDB(path)
        # The lookup degrades to a miss, never raises...
        assert reopened.get_many(SCOPE, [rows[0][0]]) == {}
        assert _counters().get("db.corrupt", 0) == 1
        # ...and the store works again after the rebuild.
        assert reopened.put_many(SCOPE, rows) == 1
        assert rows[0][0] in reopened.get_many(SCOPE, [rows[0][0]])

    def test_second_corruption_goes_dead(self, tmp_path):
        path = tmp_path / mdb.DB_FILENAME
        database = mdb.MeasurementDB(path)
        database.put_many(SCOPE, [_row([], [0], 1)])
        database.close()
        path.write_bytes(b"garbage" * 64)
        database = mdb.MeasurementDB(path)
        database.put_many(SCOPE, [_row([], [0], 1)])  # triggers rebuild 1
        database.close()
        path.write_bytes(b"garbage again" * 64)
        assert database.get_many(SCOPE, [mdb.request_digest([], [0])]) == {}
        assert database._dead is True
        assert database.stats()["enabled"] is False
        # Dead handles are cheap no-ops from here on.
        assert database.put_many(SCOPE, [_row([], [0], 1)]) == 0

    def test_unwritable_directory_degrades(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores directory permission bits")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        os.chmod(blocked, 0o500)
        try:
            database = mdb.MeasurementDB(blocked / "sub" / mdb.DB_FILENAME)
            assert database.put_many(SCOPE, [_row([], [0], 1)]) == 0
            assert database.get_many(SCOPE, [mdb.request_digest([], [0])]) == {}
        finally:
            os.chmod(blocked, 0o700)


class _CountingInner(SimulatedSetOracle):
    """Deterministic inner that records what the service delegates."""

    def __init__(self, ways: int = 4) -> None:
        super().__init__(make_policy("lru", ways))
        self.query_calls = 0
        self.delegated = 0

    def query(self, requests):
        self.query_calls += 1
        self.delegated += len(requests)
        return super().query(requests)


class TestOracleService:
    REQUESTS = [
        ([], [0, 1, 2, 3]),
        ([0, 1, 2, 3], [0]),
        ([], [0, 1, 2, 3]),  # in-batch duplicate
        ([0, 1, 2, 3], [4, 0]),
    ]

    def test_coalesces_and_writes_back(self):
        inner = _CountingInner()
        service = measuredb.OracleService(SCOPE)
        results = service.query(self.REQUESTS, inner)
        assert results == SimulatedSetOracle(make_policy("lru", 4)).query(self.REQUESTS)
        # The duplicate collapsed: one batched call, three measurements.
        assert inner.query_calls == 1
        assert inner.delegated == 3
        counters = _counters()
        assert counters["db.hit"] == 1
        assert counters["db.miss"] == 3
        assert counters["db.write"] == 3

    def test_repeat_query_serves_from_memo(self):
        inner = _CountingInner()
        service = measuredb.OracleService(SCOPE)
        first = service.query(self.REQUESTS, inner)
        obs_metrics.DEFAULT.reset()
        again = service.query(self.REQUESTS, inner)
        assert again == first
        assert inner.query_calls == 1  # nothing new delegated
        assert _counters().get("db.miss", 0) == 0

    def test_warm_process_preloads_scope(self):
        inner = _CountingInner()
        first = measuredb.OracleService(SCOPE).query(self.REQUESTS, inner)
        # A "new process": fresh service memos, same database files.
        measuredb.reset()
        obs_metrics.DEFAULT.reset()
        fresh_inner = _CountingInner()
        warm = measuredb.shared_service(SCOPE).query(self.REQUESTS, fresh_inner)
        assert warm == first
        counters = _counters()
        assert counters.get("db.miss", 0) == 0
        assert fresh_inner.query_calls == 0
        assert counters["db.preload"] == 3
        assert counters["db.hit"] == len(self.REQUESTS)

    def test_scopes_are_isolated(self):
        inner = _CountingInner()
        measuredb.OracleService("scope-a").query([([], [0, 1])], inner)
        fresh = _CountingInner()
        measuredb.OracleService("scope-b").query([([], [0, 1])], fresh)
        assert fresh.delegated == 1  # nothing leaked across scopes

    def test_shared_service_is_per_scope_singleton(self):
        assert measuredb.shared_service("x") is measuredb.shared_service("x")
        assert measuredb.shared_service("x") is not measuredb.shared_service("y")

    def test_empty_scope_rejected(self):
        with pytest.raises(ValueError):
            measuredb.OracleService("")


class TestMeasurementDBOracle:
    def test_requires_provenance(self):
        noisy = SimulatedSetOracle(make_policy("random", 4, rng=SeededRng(0)))
        with pytest.raises(MeasurementError):
            measuredb.MeasurementDBOracle(noisy)

    def test_wrap_if_enabled(self):
        deterministic = SimulatedSetOracle(make_policy("lru", 4))
        wrapped = measuredb.wrap_if_enabled(deterministic)
        assert isinstance(wrapped, measuredb.MeasurementDBOracle)
        assert wrapped.provenance() == deterministic.provenance()

        noisy = SimulatedSetOracle(make_policy("random", 4, rng=SeededRng(0)))
        assert measuredb.wrap_if_enabled(noisy) is noisy

        mdb.set_db_enabled(False)
        try:
            assert measuredb.wrap_if_enabled(deterministic) is deterministic
        finally:
            mdb.set_db_enabled(True)

    def test_logical_cost_advances_even_on_db_hits(self):
        oracle = measuredb.wrap_if_enabled(SimulatedSetOracle(make_policy("lru", 4)))
        oracle.query([([], [0, 1, 2]), ([], [0, 1, 2])])
        oracle.count_misses([], [0, 1, 2])  # served from the memo now
        assert oracle.measurements == 3
        assert oracle.accesses == 9

    def test_voting_oracle_composes(self):
        voter = VotingOracle(SimulatedSetOracle(make_policy("lru", 4)), repetitions=3)
        wrapped = measuredb.wrap_if_enabled(voter)
        assert isinstance(wrapped, measuredb.MeasurementDBOracle)
        assert wrapped.scope.startswith("vote[majorityx3]|sim|")
        assert wrapped.query([([], [0, 1, 2, 3])]) == [4]

    def test_cold_and_warm_inference_results_bit_identical(self):
        plain = PermutationInference(
            SimulatedSetOracle(make_policy("lru", 4)), ways=4
        ).infer()

        cold_oracle = measuredb.wrap_if_enabled(
            SimulatedSetOracle(make_policy("lru", 4))
        )
        cold = PermutationInference(cold_oracle, ways=4).infer()

        measuredb.reset()  # fresh memos; the sqlite file survives
        obs_metrics.DEFAULT.reset()
        warm_oracle = measuredb.wrap_if_enabled(
            SimulatedSetOracle(make_policy("lru", 4))
        )
        warm = PermutationInference(warm_oracle, ways=4).infer()

        assert cold == plain
        assert warm == cold  # same spec, same measurements, same accesses
        counters = _counters()
        assert counters.get("db.miss", 0) == 0
        assert counters.get("oracle.measurements", 0) == 0  # no real measurement
        assert counters["db.hit"] == warm.measurements


class TestHitVectorCache:
    def test_responses_served_from_db_when_opted_in(self):
        from repro.core import distinguish

        policy = make_policy("lru", 4)
        probes = [[0, 1, 2, 3], [4, 0, 1, 2], [0, 0, 1, 1]]
        plain = distinguish.responses(policy, probes)

        measuredb.set_hits_cache_enabled(True)
        cold = distinguish.responses(policy, probes)
        assert cold == plain
        assert _counters()["db.write"] == len(probes)

        measuredb.reset()  # fresh process: memos gone, rows persist
        obs_metrics.DEFAULT.reset()
        warm = distinguish.responses(make_policy("lru", 4), probes)
        assert warm == plain
        counters = _counters()
        assert counters.get("db.miss", 0) == 0
        assert counters["db.hit"] == len(probes)

    def test_partial_hits_compute_only_the_missing(self):
        from repro.core import distinguish

        policy = make_policy("lru", 4)
        measuredb.set_hits_cache_enabled(True)
        distinguish.responses(policy, [[0, 1, 2, 3]])
        obs_metrics.DEFAULT.reset()
        both = distinguish.responses(policy, [[0, 1, 2, 3], [9, 9, 9, 9]])
        assert both == distinguish.responses(make_policy("lru", 4),
                                             [[0, 1, 2, 3], [9, 9, 9, 9]])
        counters = _counters()
        assert counters["db.miss"] == 1
        assert counters["db.hit"] >= 1

    def test_randomized_policy_never_cached(self):
        from repro.core import distinguish

        measuredb.set_hits_cache_enabled(True)
        policy = make_policy("random", 4, rng=SeededRng(0))
        distinguish.responses(policy, [[0, 1, 2, 3]])
        assert _counters().get("db.write", 0) == 0


# -- concurrency: module-level workers (fork context) ------------------------

def _worker_put_rows(args):
    directory, worker, rows_n = args
    database = mdb.MeasurementDB(os.path.join(directory, mdb.DB_FILENAME))
    rows = [
        (mdb.request_digest([worker], [i]), 1, 1, worker * 1000 + i, None)
        for i in range(rows_n)
    ]
    written = database.put_many("concurrent", rows)
    database.close()
    return written


def _killed_mid_transaction(path):
    conn = sqlite3.connect(path)
    conn.execute("BEGIN")
    conn.execute(
        "INSERT INTO measurements"
        " (scope, digest, setup_len, probe_len, misses, hits)"
        " VALUES ('torn', X'00', 0, 1, 7, NULL)"
    )
    os._exit(1)  # die without committing: the batch must vanish


def _infer_cell(task):
    name, ways = task
    oracle = measuredb.wrap_if_enabled(SimulatedSetOracle(make_policy(name, ways)))
    result = PermutationInference(oracle, ways=ways).infer()
    return (name, result.succeeded, result.measurements, result.accesses)


class TestConcurrency:
    def test_many_writer_processes_share_one_database(self, tmp_path):
        jobs = [(str(tmp_path), worker, 25) for worker in range(4)]
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(4) as pool:
            written = pool.map(_worker_put_rows, jobs)
        assert written == [25, 25, 25, 25]
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        rows = database.load_scope("concurrent")
        assert len(rows) == 100
        for worker in range(4):
            for i in range(25):
                digest = mdb.request_digest([worker], [i])
                assert rows[digest] == (worker * 1000 + i, None)

    def test_writer_killed_mid_transaction_loses_only_its_batch(self, tmp_path):
        database = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        committed = _row([], [0], 1)
        database.put_many(SCOPE, [committed])
        database.close()
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(
            target=_killed_mid_transaction,
            args=(str(tmp_path / mdb.DB_FILENAME),),
        )
        victim.start()
        victim.join()
        assert victim.exitcode == 1
        reopened = mdb.MeasurementDB(tmp_path / mdb.DB_FILENAME)
        assert reopened.load_scope("torn") == {}  # uncommitted row gone
        assert committed[0] in reopened.load_scope(SCOPE)
        assert _counters().get("db.corrupt", 0) == 0

    def test_parallel_jobs_match_serial_and_warm_the_db(self):
        tasks = [("lru", 4), ("fifo", 4), ("plru", 4), ("lru", 8)]
        serial = [_infer_cell(task) for task in tasks]
        measuredb.reset()
        mdb.get_db().clear()
        obs_metrics.DEFAULT.reset()

        parallel = ExperimentRunner(jobs=2).map(_infer_cell, tasks)
        assert parallel == serial  # bit-identical InferenceResult fields

        # The workers wrote through the shared WAL database: a warm
        # serial rerun is answered without any real measurement.
        measuredb.reset()
        obs_metrics.DEFAULT.reset()
        warm = [_infer_cell(task) for task in tasks]
        assert warm == serial
        counters = _counters()
        assert counters.get("db.miss", 0) == 0
        assert counters.get("oracle.measurements", 0) == 0
