"""Tests for address decomposition."""

import pytest

from repro.cache import AddressCodec, CacheConfig


class TestDecompose:
    def test_known_layout(self):
        codec = AddressCodec(CacheConfig("L1", 32 * 1024, 8))  # 64 sets
        decomposed = codec.decompose(0x12345)
        assert decomposed.offset == 0x12345 & 0x3F
        assert decomposed.set_index == (0x12345 >> 6) & 0x3F
        assert decomposed.tag == 0x12345 >> 12

    def test_rejects_negative(self):
        codec = AddressCodec(CacheConfig("L1", 32 * 1024, 8))
        with pytest.raises(ValueError):
            codec.decompose(-1)


class TestCompose:
    def test_round_trip(self):
        codec = AddressCodec(CacheConfig("L1", 32 * 1024, 8))
        for address in (0, 0x3F, 0x40, 0xFFF, 0x12345678, (1 << 40) + 12345):
            d = codec.decompose(address)
            assert codec.compose(d.tag, d.set_index, d.offset) == address

    def test_bounds_checked(self):
        codec = AddressCodec(CacheConfig("L1", 32 * 1024, 8))
        with pytest.raises(ValueError):
            codec.compose(0, 64, 0)
        with pytest.raises(ValueError):
            codec.compose(0, 0, 64)


class TestHelpers:
    def test_line_address(self):
        codec = AddressCodec(CacheConfig("L1", 32 * 1024, 8))
        assert codec.line_address(0x12345) == 0x12340
        assert codec.line_address(0x12340) == 0x12340

    def test_same_set_addresses_distinct_and_same_set(self):
        codec = AddressCodec(CacheConfig("L1", 32 * 1024, 8))
        addresses = [codec.same_set_address(17, k) for k in range(10)]
        assert len(set(addresses)) == 10
        assert all(codec.decompose(a).set_index == 17 for a in addresses)
