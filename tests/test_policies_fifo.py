"""Tests for FIFO replacement."""

from repro.cache.set import CacheSet
from repro.policies import FifoPolicy


class TestFifo:
    def test_evicts_in_insertion_order(self):
        cache_set = CacheSet(2, FifoPolicy(2))
        cache_set.access(1)
        cache_set.access(2)
        assert cache_set.access(3).evicted_tag == 1
        assert cache_set.access(4).evicted_tag == 2

    def test_hits_do_not_delay_eviction(self):
        cache_set = CacheSet(2, FifoPolicy(2))
        cache_set.access(1)
        cache_set.access(2)
        cache_set.access(1)  # hit: FIFO ignores it
        assert cache_set.access(3).evicted_tag == 1

    def test_differs_from_lru_observably(self):
        from repro.policies import LruPolicy

        trace = [1, 2, 1, 3, 1]  # LRU keeps 1 resident, FIFO evicts it
        fifo_set = CacheSet(2, FifoPolicy(2))
        lru_set = CacheSet(2, LruPolicy(2))
        fifo_hits = [fifo_set.access(t).hit for t in trace]
        lru_hits = [lru_set.access(t).hit for t in trace]
        assert fifo_hits != lru_hits

    def test_clone_and_reset(self):
        policy = FifoPolicy(3)
        policy.fill(1)
        copy = policy.clone()
        assert copy.state_key() == policy.state_key()
        policy.reset()
        assert policy.state_key() == (0, 1, 2)
        assert copy.state_key() != (0, 1, 2)
