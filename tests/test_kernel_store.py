"""Tests for the on-disk automaton artifact store and batched engines."""

import struct

import pytest

from repro.cache.set import CacheSet
from repro.core import SimulatedSetOracle
from repro.core.distinguish import response, responses
from repro.core.oracle import CachingOracle
from repro.kernels import (
    clear_compile_cache,
    compile_policy,
    compiled_for,
    compiled_for_factory,
    compiled_for_spec,
    count_misses_batch,
    count_misses_kernel,
    kernel_disabled,
    mark_factory_unsupported,
    mark_spec_unsupported,
    mark_unsupported,
    sequence_hits,
    sequence_hits_batch,
    sequence_hits_preloaded,
    store,
)
from repro.obs import metrics as obs_metrics
from repro.policies import LruPolicy, lru_spec, make_policy
from repro.runner import ExperimentRunner, clear_memo, run_sim_cells
from repro.runner.cells import SimCell
from repro.cache import CacheConfig
from repro.workloads.trace import Trace

from tests.conftest import all_deterministic_policies


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _counters():
    return obs_metrics.DEFAULT.snapshot()["counters"]


WAYS = 3
PROBE_QUERIES = [
    ([], [1, 2, 1, 3, 2, 4]),
    ([1, 2, 3], [4, 1, 5, 2, 3]),
    ([1, 2, 3], [3, 2, 1, 4, 4]),
    ([5, 6], [5, 7, 6, 8, 5]),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name", [name for name, _ in all_deterministic_policies(WAYS)]
    )
    def test_round_trip_equals_in_memory(self, name):
        compiled = compiled_for_factory(name, (), WAYS)
        assert compiled is not None
        key = store.factory_key(name, (), WAYS)
        assert store.save(key, compiled)  # expand_all happens inside
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.frozen and loaded.is_complete()
        assert loaded.ways == compiled.ways
        assert loaded.num_states == compiled.num_states
        assert loaded.hit_next == compiled.hit_next
        assert loaded.fill_next == compiled.fill_next
        assert loaded.miss_victim == compiled.miss_victim
        assert loaded.miss_next == compiled.miss_next
        for setup, probe in PROBE_QUERIES:
            assert count_misses_kernel(loaded, setup, probe) == count_misses_kernel(
                compiled, setup, probe
            )

    def test_spec_round_trip(self):
        spec = lru_spec(4)
        compiled = compiled_for_spec(spec)
        key = store.spec_key(spec)
        assert store.save(key, compiled)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.num_states == compiled.expand_all() == 24
        assert sequence_hits(loaded, [1, 2, 3, 4], [5, 1, 2, 6]) == sequence_hits(
            compiled, [1, 2, 3, 4], [5, 1, 2, 6]
        )

    def test_frozen_automaton_cannot_expand(self):
        compiled = compile_policy("lru", WAYS)
        key = store.factory_key("lru", (), WAYS)
        assert store.save(key, compiled)
        loaded = store.load(key)
        assert loaded.frozen
        # Complete tables mean the engine never reaches expand_*; calling
        # them directly is the defensive error path.
        from repro.errors import KernelUnsupported

        with pytest.raises(KernelUnsupported):
            loaded.expand_hit(0, 0)

    def test_save_refuses_over_budget_policy(self):
        compiled = compile_policy(LruPolicy(4), budget=3)
        assert not store.save(store.factory_key("lru", (), 4, budget=3), compiled)


class TestCorruptionFallback:
    def _saved_key(self):
        key = store.factory_key("fifo", (), WAYS)
        assert store.save(key, compiled_for_factory("fifo", (), WAYS))
        return key

    def test_missing_file_returns_none(self):
        assert store.load(store.factory_key("lru", (), WAYS)) is None

    def test_truncated_file_recompiles(self):
        key = self._saved_key()
        path = store.artifact_path(key)
        path.write_bytes(path.read_bytes()[:-7])
        assert store.load(key) is None
        assert not path.exists()  # corrupt entries are unlinked
        assert compiled_for_factory("fifo", (), WAYS) is not None

    def test_flipped_payload_byte_fails_checksum(self):
        key = self._saved_key()
        path = store.artifact_path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load(key) is None
        assert not path.exists()

    def test_bad_magic_recompiles(self):
        key = self._saved_key()
        path = store.artifact_path(key)
        path.write_bytes(b"garbage" + path.read_bytes())
        assert store.load(key) is None

    def test_garbage_header_recompiles(self):
        key = self._saved_key()
        path = store.artifact_path(key)
        blob = path.read_bytes()
        path.write_bytes(store.MAGIC + struct.pack(">I", 10) + blob[len(store.MAGIC) + 4 :])
        assert store.load(key) is None

    def test_schema_bump_ignores_old_artifact(self, monkeypatch):
        key = self._saved_key()
        old_path = store.artifact_path(key)
        assert store.load(key) is not None
        monkeypatch.setattr(store, "SCHEMA_VERSION", store.SCHEMA_VERSION + 1)
        bumped = store.factory_key("fifo", (), WAYS)
        assert bumped.canonical != key.canonical
        assert store.load(bumped) is None  # lives in a different subdir
        # The old file is untouched (stale, not corrupt).
        assert old_path.exists()
        # stats() reports it stale; clear(stale_only=True) removes it.
        assert store.stats()["stale_entries"] == 1
        assert store.clear(stale_only=True) == 1
        assert not old_path.exists()

    def test_key_mismatch_leaves_file_alone(self):
        key = self._saved_key()
        other = store.factory_key("lru", (), WAYS)
        path = store.artifact_path(key)
        path.rename(store.artifact_path(other))
        assert store.load(other) is None
        assert store.artifact_path(other).exists()


class TestStoreConsultation:
    def test_factory_consults_disk_across_cache_clears(self):
        obs_metrics.DEFAULT.reset()
        compiled = compiled_for_factory("plru", (), 4)
        assert _counters()["kernel.compile.miss"] == 1
        store.save(store.factory_key("plru", (), 4), compiled)
        clear_compile_cache()
        obs_metrics.DEFAULT.reset()
        again = compiled_for_factory("plru", (), 4)
        assert again is not None and again.frozen
        counters = _counters()
        assert counters.get("kernel.compile.miss", 0) == 0
        assert counters["kernel.compile.load"] == 1
        # Second lookup is a pure memory hit.
        assert compiled_for_factory("plru", (), 4) is again
        assert _counters()["kernel.compile.hit"] == 1

    def test_spec_consults_disk(self):
        spec = lru_spec(WAYS)
        store.save(store.spec_key(spec), compiled_for_spec(spec))
        clear_compile_cache()
        obs_metrics.DEFAULT.reset()
        assert compiled_for_spec(spec).frozen
        assert _counters()["kernel.compile.load"] == 1

    def test_loaded_automaton_measures_identically(self):
        policy = make_policy("srrip", WAYS)
        with kernel_disabled():
            reference = SimulatedSetOracle(make_policy("srrip", WAYS))
            expected = [
                reference.count_misses(setup, probe) for setup, probe in PROBE_QUERIES
            ]
        store.save(
            store.factory_key("srrip", (), WAYS),
            compiled_for_factory("srrip", (), WAYS),
        )
        clear_compile_cache()
        oracle = SimulatedSetOracle(policy)
        assert [
            oracle.count_misses(setup, probe) for setup, probe in PROBE_QUERIES
        ] == expected

    def test_registry_instances_share_the_factory_automaton(self):
        # make_policy stamps provenance, so equivalent instances resolve
        # to one automaton per process (and through it, the disk store).
        first = compiled_for(make_policy("fifo", WAYS))
        second = compiled_for(make_policy("fifo", WAYS))
        assert first is second
        assert compiled_for_factory("fifo", (), WAYS) is first

    def test_unsupported_counter_for_randomized(self):
        obs_metrics.DEFAULT.reset()
        assert compiled_for_factory("random", (), WAYS) is None
        counters = _counters()
        assert counters["kernel.compile.unsupported"] == 1
        assert counters.get("kernel.compile.miss", 0) == 0

    def test_store_disabled_bypasses_disk(self):
        key = store.factory_key("lru", (), WAYS)
        assert store.save(key, compiled_for_factory("lru", (), WAYS))
        clear_compile_cache()
        obs_metrics.DEFAULT.reset()
        with store.store_disabled():
            assert not store.store_enabled()
            compiled = compiled_for_factory("lru", (), WAYS)
        assert compiled is not None and not compiled.frozen
        assert _counters()["kernel.compile.miss"] == 1

    def test_ensure_persisted_memoizes(self):
        key = store.factory_key("lru", (), WAYS)
        compiled = compiled_for_factory("lru", (), WAYS)
        assert store.ensure_persisted(key, compiled)
        mtime = store.artifact_path(key).stat().st_mtime_ns
        assert store.ensure_persisted(key, compiled)
        assert store.artifact_path(key).stat().st_mtime_ns == mtime

    def test_stats_and_clear(self):
        assert store.stats()["entries"] == 0
        store.save(store.factory_key("lru", (), WAYS), compiled_for_factory("lru", (), WAYS))
        store.save(store.factory_key("fifo", (), WAYS), compiled_for_factory("fifo", (), WAYS))
        info = store.stats()
        assert info["entries"] == 2
        assert info["stale_entries"] == 0
        assert info["total_bytes"] > 0
        assert all(entry["current"] for entry in info["artifacts"])
        assert store.clear() == 2
        assert store.stats()["entries"] == 0

    def test_warm_reports_statuses(self):
        report = store.warm([("lru", (), WAYS), ("random", (), WAYS), ("lru", (), WAYS)])
        assert [entry["policy"] for entry in report] == ["lru", "random"]
        by_name = {entry["policy"]: entry for entry in report}
        assert by_name["lru"]["status"] == "persisted"
        assert by_name["lru"]["states"] == 6  # 3! LRU orders
        assert by_name["random"]["status"] == "unsupported"
        assert store.load(store.factory_key("lru", (), WAYS)) is not None


class TestClearCompileCacheFullReset:
    def test_clears_instance_unsupported_marker(self):
        policy = LruPolicy(WAYS)
        assert compiled_for(policy) is not None
        mark_unsupported(policy)
        assert compiled_for(policy) is None
        clear_compile_cache()
        assert compiled_for(policy) is not None

    def test_clears_factory_unsupported_marker(self):
        mark_factory_unsupported("plru", (), 4)
        assert compiled_for_factory("plru", (), 4) is None
        clear_compile_cache()
        assert compiled_for_factory("plru", (), 4) is not None

    def test_clears_spec_unsupported_marker(self):
        spec = lru_spec(WAYS)
        mark_spec_unsupported(spec)
        assert compiled_for_spec(spec) is None
        clear_compile_cache()
        assert compiled_for_spec(spec) is not None

    def test_clears_persisted_memo(self):
        key = store.factory_key("lru", (), WAYS)
        store.save(key, compiled_for_factory("lru", (), WAYS))
        store.artifact_path(key).unlink()
        clear_compile_cache()
        # A cleared session must re-verify the disk, not trust the memo.
        compiled = compiled_for_factory("lru", (), WAYS)
        assert store.ensure_persisted(key, compiled)
        assert store.artifact_path(key).exists()


class TestBatchEngines:
    @pytest.mark.parametrize(
        "name", [name for name, _ in all_deterministic_policies(WAYS)]
    )
    def test_count_misses_batch_matches_per_query_and_interpreter(self, name):
        compiled = compiled_for_factory(name, (), WAYS)
        batch = count_misses_batch(compiled, PROBE_QUERIES)
        assert batch == [
            count_misses_kernel(compiled, setup, probe)
            for setup, probe in PROBE_QUERIES
        ]
        with kernel_disabled():
            oracle = SimulatedSetOracle(make_policy(name, WAYS))
            assert batch == [
                oracle.count_misses(setup, probe) for setup, probe in PROBE_QUERIES
            ]

    @pytest.mark.parametrize(
        "name", [name for name, _ in all_deterministic_policies(WAYS)]
    )
    def test_sequence_hits_batch_matches_per_query(self, name):
        compiled = compiled_for_factory(name, (), WAYS)
        shared_setup = [9, 8, 7]
        queries = [(shared_setup, probe) for _, probe in PROBE_QUERIES]
        assert sequence_hits_batch(compiled, queries) == [
            sequence_hits(compiled, setup, probe) for setup, probe in queries
        ]

    def test_sequence_hits_preloaded_matches_cache_set(self):
        compiled = compiled_for_factory("srrip", (), 4)
        tags = [10, 11, 12, 13]
        probe = [14, 10, 15, 11, 12, 14]
        cache_set = CacheSet(4, make_policy("srrip", 4))
        cache_set.preload(tags)
        expected = tuple(cache_set.access(block).hit for block in probe)
        assert sequence_hits_preloaded(compiled, tags, probe) == expected

    def test_batch_flushes_one_kernel_call(self):
        compiled = compiled_for_factory("lru", (), WAYS)
        obs_metrics.DEFAULT.reset()
        count_misses_batch(compiled, PROBE_QUERIES)
        counters = _counters()
        assert counters["kernel.calls"] == 1
        assert counters["kernel.calls.batch"] == 1

    def test_oracle_query_matches_loop(self):
        batched = SimulatedSetOracle(make_policy("plru", 4))
        looped = SimulatedSetOracle(make_policy("plru", 4))
        queries = [(list(range(4)), [5, 0, 6, 1]), ([], [1, 1, 2]), (list(range(4)), [5, 0, 6, 1])]
        assert batched.query(queries) == [
            looped.count_misses(setup, probe) for setup, probe in queries
        ]
        assert batched.measurements == looped.measurements == 3
        assert batched.accesses == looped.accesses

    def test_caching_oracle_batch_dedup_and_accounting(self):
        oracle = CachingOracle(SimulatedSetOracle(make_policy("lru", WAYS)))
        queries = [([], [1, 2, 3]), ([], [1, 2, 3]), ([1], [2, 3, 1])]
        results = oracle.query(queries)
        assert results[0] == results[1]
        assert oracle.cache_hits == 1
        assert oracle.cache_misses == 2
        assert oracle._inner.measurements == 2
        # Replaying the same batch is all hits.
        assert oracle.query(queries) == results
        assert oracle.cache_hits == 4

    def test_caching_oracle_batch_matches_serial_counters(self):
        serial = CachingOracle(SimulatedSetOracle(make_policy("fifo", WAYS)))
        batched = CachingOracle(SimulatedSetOracle(make_policy("fifo", WAYS)))
        queries = PROBE_QUERIES + PROBE_QUERIES[:2]
        expected = [serial.count_misses(setup, probe) for setup, probe in queries]
        assert batched.query(queries) == expected
        assert batched.cache_hits == serial.cache_hits
        assert batched.cache_misses == serial.cache_misses
        assert batched.accesses == serial.accesses

    def test_distinguish_responses_matches_per_probe(self):
        policy = make_policy("plru", 4)
        probes = [probe for _, probe in PROBE_QUERIES]
        assert responses(policy, probes) == [response(policy, probe) for probe in probes]
        with kernel_disabled():
            assert responses(policy, probes) == [
                response(policy, probe) for probe in probes
            ]


class TestRunnerPrewarm:
    CONFIG = CacheConfig("tiny", 2 * 1024, 4)  # 8 sets

    def _cells(self):
        trace = Trace("t", tuple((i % 64) * 64 for i in range(200)))
        return [
            SimCell.make(trace, self.CONFIG, name)
            for name in ("lru", "fifo", "plru", "random")
        ]

    def test_parallel_prewarm_populates_store_and_matches_serial(self):
        clear_memo()
        serial = run_sim_cells(self._cells(), runner=ExperimentRunner())
        clear_memo()
        clear_compile_cache()
        obs_metrics.DEFAULT.reset()
        parallel = run_sim_cells(self._cells(), runner=ExperimentRunner(jobs=2))
        assert [r.stats for r in parallel] == [r.stats for r in serial]
        # The parent resolved every deterministic automaton once...
        for name in ("lru", "fifo", "plru"):
            assert store.load(store.factory_key(name, (), 4)) is not None
        # ...and a warm re-run compiles nothing.
        clear_memo()
        clear_compile_cache()
        obs_metrics.DEFAULT.reset()
        rerun = run_sim_cells(self._cells(), runner=ExperimentRunner(jobs=2))
        assert [r.stats for r in rerun] == [r.stats for r in serial]
        assert _counters().get("kernel.compile.miss", 0) == 0
        assert _counters()["kernel.compile.load"] >= 3
