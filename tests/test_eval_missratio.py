"""Tests for miss-ratio evaluation."""

import pytest

from repro.cache import CacheConfig
from repro.eval import cache_size_sweep, miss_ratio, miss_ratio_matrix, simulate_trace
from repro.workloads import Trace, cyclic_loop, sequential_scan


class TestSimulateTrace:
    def test_fits_in_cache_second_pass_free(self):
        config = CacheConfig("c", 4096, 4)  # 64 lines
        trace = cyclic_loop(32, iterations=2)
        stats = simulate_trace(trace, config, "lru")
        assert stats.misses == 32  # only the cold pass misses
        assert stats.accesses == 64

    def test_thrashing_loop_under_lru(self):
        config = CacheConfig("c", 4096, 64)  # fully associative, 64 lines
        trace = cyclic_loop(65, iterations=3)
        stats = simulate_trace(trace, config, "lru")
        assert stats.miss_ratio == 1.0  # the classic LRU pathology

    def test_miss_ratio_helper(self):
        config = CacheConfig("c", 4096, 4)
        assert miss_ratio(sequential_scan(8), config, "lru") == 1.0


class TestMatrix:
    def make(self):
        config = CacheConfig("c", 4096, 64)  # fully associative
        traces = [cyclic_loop(65, 3), cyclic_loop(32, 3)]
        return miss_ratio_matrix(traces, config, ["lru", "lip"])

    def test_lookup(self):
        matrix = self.make()
        assert matrix.ratio("lru", "loop-65w") == 1.0
        assert matrix.ratio("lip", "loop-65w") < 1.0  # LIP defeats thrashing

    def test_orders_preserved(self):
        matrix = self.make()
        assert matrix.policies() == ["lru", "lip"]
        assert matrix.traces() == ["loop-65w", "loop-32w"]

    def test_rows_shape(self):
        matrix = self.make()
        rows = matrix.rows()
        assert len(rows) == 2
        assert len(rows[0]) == 3  # trace name + 2 policies

    def test_missing_cell_raises(self):
        matrix = self.make()
        with pytest.raises(KeyError):
            matrix.ratio("fifo", "loop-65w")

    def test_relative_to(self):
        matrix = self.make()
        relative = matrix.relative_to("lru")
        assert relative.ratio("lru", "loop-65w") == 1.0
        assert relative.ratio("lip", "loop-65w") < 1.0

    def test_relative_to_zero_miss_baseline_keeps_one(self):
        # Regression: the baseline cell must keep 1.0 (its documented
        # contract) even when the baseline records zero misses, and the
        # other policies divide by "one miss" instead of by zero.
        config = CacheConfig("c", 4096, 64)
        trace = cyclic_loop(32, 3)  # fits: warm passes are all hits
        matrix = miss_ratio_matrix([trace], config, ["lip", "lru"])
        assert matrix.ratio("lru", trace.name) < 1.0
        relative = matrix.relative_to("lru")
        baseline = matrix.cell("lru", trace.name)
        assert baseline.misses > 0  # cold pass
        # Synthesize a true zero-miss baseline to hit the guarded branch.
        from repro.eval.missratio import MissRatioCell, MissRatioMatrix

        cells = (
            MissRatioCell("base", "t", 0.0, 0, 96),
            MissRatioCell("other", "t", 0.5, 48, 96),
        )
        synthetic = MissRatioMatrix(config=config, cells=cells).relative_to("base")
        assert synthetic.ratio("base", "t") == 1.0  # contract: keeps 1.0
        # other / (one miss = 1/96) = 0.5 * 96
        assert synthetic.ratio("other", "t") == pytest.approx(48.0)

    def test_relative_to_of_relative_matrix_is_finite(self):
        # Regression: the conservative denominator used to read
        # ``accesses`` from an already-zeroed relative cell, collapsing
        # "one miss" to 1.0; counts are now carried through.
        matrix = self.make()
        relative = matrix.relative_to("lru")
        for cell in relative.cells:
            assert cell.accesses > 0  # counts survive the normalisation
        again = relative.relative_to("lru")
        assert again.ratio("lru", "loop-65w") == 1.0
        assert all(ratio == ratio and ratio != float("inf")
                   for row in again.rows() for ratio in row[1:])

    def test_cell_index_matches_linear_search(self):
        matrix = self.make()
        for cell in matrix.cells:
            assert matrix.cell(cell.policy, cell.trace) is cell
        with pytest.raises(KeyError):
            matrix.cell("nope", "loop-65w")


class TestSweep:
    def test_monotone_for_lru_on_loops(self):
        trace = cyclic_loop(64, 4)
        points = cache_size_sweep(trace, [1024, 4096, 16 * 1024], ["lru"])
        ratios = [p.miss_ratio for p in points]
        assert ratios == sorted(ratios, reverse=True)  # larger cache, fewer misses

    def test_one_point_per_policy_size(self):
        trace = cyclic_loop(16, 2)
        points = cache_size_sweep(trace, [1024, 2048], ["lru", "fifo"])
        assert len(points) == 4
        assert {(p.policy, p.cache_size) for p in points} == {
            ("lru", 1024), ("lru", 2048), ("fifo", 1024), ("fifo", 2048)
        }
