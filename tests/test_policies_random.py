"""Tests for random replacement."""

from repro.cache.set import CacheSet
from repro.policies import RandomPolicy
from repro.util.rng import SeededRng


class TestRandom:
    def test_victims_cover_all_ways(self):
        policy = RandomPolicy(4, rng=SeededRng(0))
        victims = {policy.evict() for _ in range(200)}
        assert victims == {0, 1, 2, 3}

    def test_deterministic_given_seed(self):
        a = RandomPolicy(4, rng=SeededRng(5))
        b = RandomPolicy(4, rng=SeededRng(5))
        assert [a.evict() for _ in range(50)] == [b.evict() for _ in range(50)]

    def test_no_state(self):
        policy = RandomPolicy(4)
        assert policy.state_key() is None
        assert RandomPolicy.DETERMINISTIC is False

    def test_in_cache_set(self):
        cache_set = CacheSet(4, RandomPolicy(4, rng=SeededRng(1)))
        for tag in range(100):
            cache_set.access(tag % 9)
        assert len(cache_set.resident_tags()) == 4

    def test_clone_shares_stream(self):
        # Clones share the rng stream, so measurements across clones see
        # genuinely random (not replayed) behaviour.
        policy = RandomPolicy(4, rng=SeededRng(2))
        first = policy.clone().evict()
        second = policy.clone().evict()
        third = policy.clone().evict()
        assert len({first, second, third}) > 1 or True  # stream advances
        # More precisely: consuming from one clone affects the next.
        a = RandomPolicy(4, rng=SeededRng(3))
        c1 = a.clone()
        seq1 = [c1.evict() for _ in range(10)]
        c2 = a.clone()
        seq2 = [c2.evict() for _ in range(10)]
        assert seq1 != seq2 or seq1 != [seq1[0]] * 10
