"""Tests for the combined reverse-engineering pipeline."""

import pytest

from repro.core import SimulatedSetOracle, reverse_engineer
from repro.core.identify import IdentificationConfig
from repro.core.inference import InferenceConfig
from repro.policies import LruPolicy, PlruPolicy, RandomPolicy, make_policy


class TestReverseEngineer:
    def test_permutation_route(self):
        finding = reverse_engineer(SimulatedSetOracle(PlruPolicy(4)))
        assert finding.method == "permutation"
        assert finding.policy_name == "plru"
        assert finding.spec is not None
        assert finding.identified
        assert "plru" in finding.summary()

    def test_candidate_route(self):
        finding = reverse_engineer(SimulatedSetOracle(make_policy("bitplru", 4)))
        assert finding.method == "candidate"
        assert finding.policy_name == "bitplru"
        assert finding.spec is None
        assert "candidate" in finding.summary()

    def test_random_policy_unidentified(self):
        finding = reverse_engineer(SimulatedSetOracle(RandomPolicy(4)))
        assert finding.method == "unknown"
        assert not finding.identified
        assert "unidentified" in finding.summary()

    def test_cost_accumulates_over_both_stages(self):
        permutation_only = reverse_engineer(SimulatedSetOracle(LruPolicy(4)))
        fallback = reverse_engineer(SimulatedSetOracle(make_policy("nru", 4)))
        assert fallback.measurements > 0
        assert permutation_only.measurements > 0

    def test_configs_forwarded(self):
        finding = reverse_engineer(
            SimulatedSetOracle(LruPolicy(4)),
            inference_config=InferenceConfig(verify_sequences=5),
            identification_config=IdentificationConfig(screening_sequences=5),
        )
        assert finding.policy_name == "lru"

    def test_ways_override(self):
        oracle = SimulatedSetOracle(LruPolicy(4), expose_ways=False)
        finding = reverse_engineer(oracle, ways=4)
        assert finding.ways == 4
        assert finding.policy_name == "lru"
