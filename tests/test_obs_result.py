"""Tests for the ExperimentResult protocol and its validators."""

import pytest

from repro.core import InferenceConfig, InferenceResult, PermutationInference, SimulatedSetOracle
from repro.errors import ResultSchemaError
from repro.obs.result import (
    SCHEMA_VERSION,
    ExperimentResult,
    main,
    validate_result,
    validate_result_file,
)
from repro.policies import get


def sample_result():
    return ExperimentResult(
        name="sample",
        params={"seed": 0, "policies": ["lru", "fifo"]},
        data={"rows": [[1, 2], [3, 4]]},
        metrics={"counters": {"oracle.measurements": 7}, "observations": {}},
    )


class TestRoundTrip:
    def test_json_round_trip(self):
        result = sample_result()
        clone = ExperimentResult.from_json(result.to_json())
        assert clone == result

    def test_dict_round_trip(self):
        result = sample_result()
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_defaults(self):
        result = ExperimentResult(name="x", params={}, data=None)
        assert result.schema_version == SCHEMA_VERSION
        assert result.metrics == {}


class TestValidation:
    def test_valid_payload_passes(self):
        payload = sample_result().to_dict()
        assert validate_result(payload) is payload

    def test_non_object_rejected(self):
        with pytest.raises(ResultSchemaError, match="object"):
            validate_result([1, 2])

    def test_missing_fields_named(self):
        with pytest.raises(ResultSchemaError, match="missing fields.*data"):
            validate_result({"schema_version": 1, "name": "x", "params": {}, "metrics": {}})

    def test_bad_version_rejected(self):
        payload = sample_result().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ResultSchemaError, match="unsupported"):
            validate_result(payload)
        payload["schema_version"] = True
        with pytest.raises(ResultSchemaError, match="integer"):
            validate_result(payload)

    def test_empty_name_rejected(self):
        payload = sample_result().to_dict()
        payload["name"] = ""
        with pytest.raises(ResultSchemaError, match="name"):
            validate_result(payload)

    def test_bad_json_reported(self):
        with pytest.raises(ResultSchemaError, match="JSON"):
            ExperimentResult.from_json("{nope")


class TestFileValidation:
    def test_validate_result_file(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(sample_result().to_json(indent=2))
        assert validate_result_file(path).name == "sample"

    def test_main_ok_and_invalid(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(sample_result().to_json())
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main([str(good)]) == 0
        assert "ok" in capsys.readouterr().out
        assert main([str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "INVALID" in captured.err
        assert main([]) == 2


class TestProducers:
    def test_inference_result_round_trip(self):
        oracle = SimulatedSetOracle(get("lru", 2))
        inferred = PermutationInference(
            oracle, config=InferenceConfig(verify_sequences=2)
        ).infer()
        envelope = inferred.to_experiment_result(params={"policy": "lru"})
        validate_result(envelope.to_dict())
        rebuilt = InferenceResult.from_experiment_result(
            ExperimentResult.from_json(envelope.to_json())
        )
        assert rebuilt.spec == inferred.spec
        assert rebuilt.ways == inferred.ways
        assert rebuilt.verified == inferred.verified
        assert rebuilt.measurements == inferred.measurements

    def test_miss_ratio_matrix_round_trip(self):
        from repro.cache import CacheConfig
        from repro.eval.missratio import miss_ratio_matrix
        from repro.workloads import cyclic_loop

        config = CacheConfig("L1", 4096, 4)
        traces = [cyclic_loop(32, iterations=3), cyclic_loop(96, iterations=3)]
        matrix = miss_ratio_matrix(traces, config, ["lru", "fifo"])
        envelope = matrix.to_experiment_result(params={"seed": 0})
        validate_result(envelope.to_dict())
        rebuilt = type(matrix).from_experiment_result(
            ExperimentResult.from_json(envelope.to_json())
        )
        assert rebuilt == matrix
