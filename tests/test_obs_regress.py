"""Tests for repro.obs.regress: median+MAD baselines and verdicts.

The detector's contract: group by (experiment, jobs, kernel, vector),
judge the newest run against the window of prior runs, skip under-
sampled groups, flag genuine multiples, tolerate jitter inside the
noise band, and honour an explicit --baseline git pin.
"""

import pytest

from repro.obs import history as obs_history
from repro.obs import regress as obs_regress
from tests.test_obs_history import make_ledger


@pytest.fixture
def db(tmp_path):
    handle = obs_history.HistoryDB(tmp_path / "history-v1.sqlite")
    yield handle
    handle.close()


def record_series(db, walls, name="e_test", **overrides):
    """Record one run per wall time, oldest first, distinct timestamps."""
    for index, wall in enumerate(walls):
        db.record_ledger(
            make_ledger(
                name=name,
                wall=wall,
                created=f"2026-08-{index + 1:02d}T00:00:00Z",
                **overrides,
            )
        )


class TestMedianMad:
    def test_odd(self):
        assert obs_regress.median_mad([1.0, 9.0, 2.0]) == (2.0, 1.0)

    def test_even(self):
        median, mad = obs_regress.median_mad([1.0, 2.0, 3.0, 4.0])
        assert median == 2.5
        assert mad == 1.0

    def test_constant_series_has_zero_mad(self):
        assert obs_regress.median_mad([3.0, 3.0, 3.0]) == (3.0, 0.0)


class TestCheckHistory:
    def test_single_run_group_skips(self, db):
        record_series(db, [1.0])
        (verdict,) = obs_regress.check_history(db=db)
        assert verdict.status == "skip"
        assert "baseline" in verdict.note

    def test_steady_series_passes(self, db):
        record_series(db, [1.0, 1.02, 0.98, 1.01])
        verdicts = obs_regress.check_history(db=db)
        assert all(verdict.status == "ok" for verdict in verdicts)

    def test_three_x_outlier_fails_even_with_one_baseline_run(self, db):
        # The acceptance scenario: one committed baseline, one synthetic
        # 3x outlier — the gate must trip.
        record_series(db, [1.0, 3.0])
        wall = next(
            verdict for verdict in obs_regress.check_history(db=db)
            if verdict.metric == "wall_seconds"
        )
        assert wall.status == "fail"
        assert wall.ratio == pytest.approx(3.0)
        assert wall.run_id is not None

    def test_tiny_absolute_drift_never_flags(self, db):
        # 3x ratio but only 30ms absolute: inside WALL_EPSILON.
        record_series(db, [0.010, 0.010, 0.030])
        verdicts = obs_regress.check_history(db=db)
        assert all(verdict.status == "ok" for verdict in verdicts)

    def test_groups_are_isolated_by_jobs(self, db):
        record_series(db, [1.0, 1.0], jobs=0)
        record_series(db, [5.0, 5.0], jobs=4)
        verdicts = obs_regress.check_history(db=db)
        keys = {verdict.key.jobs for verdict in verdicts}
        assert keys == {0, 4}
        assert all(verdict.status == "ok" for verdict in verdicts)

    def test_counter_regression_flagged(self, db):
        for index, measurements in enumerate([100.0, 100.0, 100.0, 500.0]):
            db.record_ledger(
                make_ledger(
                    wall=1.0 + index * 0.001,
                    created=f"2026-08-{index + 1:02d}T00:00:00Z",
                    counters={"oracle.measurements": measurements},
                )
            )
        by_metric = {
            verdict.metric: verdict
            for verdict in obs_regress.check_history(db=db)
        }
        assert by_metric["oracle.measurements"].status == "fail"
        assert by_metric["wall_seconds"].status == "ok"

    def test_min_samples_guard(self, db):
        record_series(db, [1.0, 3.0])
        (verdict,) = obs_regress.check_history(db=db, min_samples=3)
        assert verdict.status == "skip"

    def test_experiment_filter(self, db):
        record_series(db, [1.0, 1.0], name="e_a")
        record_series(db, [1.0, 1.0], name="e_b")
        verdicts = obs_regress.check_history(db=db, experiments=["e_a"])
        assert {verdict.key.name for verdict in verdicts} == {"e_a"}

    def test_baseline_ref_pins_the_window(self, db):
        # Slow runs on another sha; fast baseline on `aaaa`. The sliding
        # window would average in the slow runs and pass the candidate;
        # pinned to `aaaa` it must fail.
        for index, (wall, sha) in enumerate(
            [(1.0, "aaaa1111"), (1.0, "aaaa2222"), (9.0, "bbbb1111")]
        ):
            db.record_ledger(
                make_ledger(
                    wall=wall,
                    created=f"2026-08-{index + 1:02d}T00:00:00Z",
                    git={"sha": sha * 5, "dirty": False},
                )
            )
        db.record_ledger(
            make_ledger(
                wall=4.0,
                created="2026-08-09T00:00:00Z",
                git={"sha": "cccc1111" * 5, "dirty": False},
            )
        )
        pinned = next(
            verdict
            for verdict in obs_regress.check_history(db=db, baseline_ref="aaaa")
            if verdict.metric == "wall_seconds"
        )
        assert pinned.status == "fail"
        assert pinned.baseline_runs == 2

    def test_baseline_ref_with_no_matching_runs_skips(self, db):
        record_series(db, [1.0, 1.0])
        (verdict,) = obs_regress.check_history(db=db, baseline_ref="ffff")
        assert verdict.status == "skip"
        assert "ffff" in verdict.note


class TestCheckRun:
    def test_fresh_ledger_judged_against_history(self, db):
        record_series(db, [1.0, 1.0, 1.0])
        candidate = make_ledger(wall=5.0, created="2026-08-20T00:00:00Z")
        wall = next(
            verdict for verdict in obs_regress.check_run(candidate, db=db)
            if verdict.metric == "wall_seconds"
        )
        assert wall.status == "fail"

    def test_already_ingested_ledger_excluded_from_its_baseline(self, db):
        ledger = make_ledger(wall=5.0, created="2026-08-20T00:00:00Z")
        record_series(db, [1.0, 1.0])
        db.record_ledger(ledger)
        wall = next(
            verdict for verdict in obs_regress.check_run(ledger, db=db)
            if verdict.metric == "wall_seconds"
        )
        # Baseline is the two 1.0s runs only — the 5.0s row is itself.
        assert wall.baseline_runs == 2
        assert wall.status == "fail"

    def test_no_history_skips(self, db):
        (verdict,) = obs_regress.check_run(make_ledger(), db=db)
        assert verdict.status == "skip"


class TestFormatting:
    def test_table_carries_group_ratio_and_status(self, db):
        record_series(db, [1.0, 3.0])
        text = obs_regress.format_verdicts(obs_regress.check_history(db=db))
        assert "e_test" in text
        assert "FAIL" in text
        assert "3.00x" in text

    def test_describe_mentions_the_mode_switches(self):
        key = obs_regress.BaselineKey(
            name="e3", jobs=4, kernel=True, vector=False
        )
        described = key.describe()
        assert "jobs=4" in described
        assert "kernel=True" in described
        assert "vector=False" in described


class TestTrieGrouping:
    """Planner engagement participates in the baseline grouping key."""

    def test_param_is_authoritative(self):
        # A CLI run that recorded --no-trie groups as False even when a
        # (stale) counter claims engagement.
        assert obs_regress._trie_flag({"trie": False}, {"kernel.trie.plans": 3}) is False
        assert obs_regress._trie_flag({"trie": True}, None) is True

    def test_counters_are_the_fallback_evidence(self):
        assert obs_regress._trie_flag(None, {"kernel.trie.plans": 2}) is True
        # No engagement evidence: pre-planner rows and gate-declined runs
        # both executed the plain batched engines, so they group together.
        assert obs_regress._trie_flag({}, {"kernel.trie.plans": 0}) is None
        assert obs_regress._trie_flag(None, None) is None

    def test_groups_are_isolated_by_trie(self, db):
        record_series(db, [1.0, 1.0], params={"seed": 0, "trie": True})
        record_series(db, [5.0, 5.0], params={"seed": 0, "trie": False})
        verdicts = obs_regress.check_history(db=db)
        assert {verdict.key.trie for verdict in verdicts} == {True, False}
        assert all(verdict.status == "ok" for verdict in verdicts)

    def test_fallback_spike_is_regression_checked(self, db):
        # Batches newly declining the planner (gates drifting shut) is a
        # cost regression even before wall time moves.
        for index, fallbacks in enumerate([10.0, 10.0, 10.0, 100.0]):
            db.record_ledger(
                make_ledger(
                    wall=1.0 + index * 0.001,
                    created=f"2026-08-{index + 1:02d}T00:00:00Z",
                    counters={
                        "kernel.trie.plans": 4.0,
                        "kernel.trie.fallbacks": fallbacks,
                    },
                )
            )
        by_metric = {
            verdict.metric: verdict
            for verdict in obs_regress.check_history(db=db)
        }
        assert by_metric["kernel.trie.fallbacks"].status == "fail"
        assert by_metric["kernel.trie.fallbacks"].key.trie is True
        assert by_metric["wall_seconds"].status == "ok"

    def test_describe_mentions_trie(self):
        key = obs_regress.BaselineKey(
            name="e3", jobs=4, kernel=True, vector=True, trie=True
        )
        assert "trie=True" in key.describe()
