"""Property-based tests over the whole policy zoo.

Every deterministic policy must satisfy the structural contract of the
policy interface for arbitrary operation sequences; hypothesis generates
the sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set import CacheSet
from repro.policies import lru_spec, make_policy
from tests.conftest import all_deterministic_policies

WAYS = 4

policy_names = st.sampled_from([name for name, _ in all_deterministic_policies(WAYS)])
tag_sequences = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=120)


def build(name):
    if name == "permutation":
        return make_policy(name, WAYS, spec=lru_spec(WAYS))
    return make_policy(name, WAYS)


@given(name=policy_names, tags=tag_sequences)
@settings(max_examples=150, deadline=None)
def test_set_invariants_hold(name, tags):
    """Occupancy and uniqueness invariants for every policy."""
    cache_set = CacheSet(WAYS, build(name))
    resident = set()
    for tag in tags:
        result = cache_set.access(tag)
        # A hit must not change occupancy; a miss installs exactly the tag.
        if result.hit:
            assert tag in resident
        else:
            assert tag not in resident
            resident.add(tag)
            if result.evicted_tag is not None:
                assert result.evicted_tag in resident
                resident.discard(result.evicted_tag)
        assert cache_set.resident_tags() == resident
        contents = [t for t in cache_set.contents() if t is not None]
        assert len(contents) == len(set(contents))
        assert len(contents) <= WAYS


@given(name=policy_names, tags=tag_sequences)
@settings(max_examples=100, deadline=None)
def test_determinism(name, tags):
    """The same trace always produces the same outcomes."""

    def run():
        cache_set = CacheSet(WAYS, build(name))
        return [cache_set.access(tag).hit for tag in tags]

    assert run() == run()


@given(name=policy_names, tags=tag_sequences)
@settings(max_examples=100, deadline=None)
def test_clone_is_transparent(name, tags):
    """Cloning mid-trace must not change subsequent behaviour."""
    split = len(tags) // 2
    reference = CacheSet(WAYS, build(name))
    for tag in tags[:split]:
        reference.access(tag)
    forked = reference.clone()
    tail_reference = [reference.access(tag).hit for tag in tags[split:]]
    tail_forked = [forked.access(tag).hit for tag in tags[split:]]
    assert tail_reference == tail_forked


@given(name=policy_names, tags=tag_sequences)
@settings(max_examples=100, deadline=None)
def test_state_key_characterises_future(name, tags):
    """Equal state keys imply equal responses to the next access."""
    a = CacheSet(WAYS, build(name))
    b = CacheSet(WAYS, build(name))
    for tag in tags:
        a.access(tag)
        b.access(tag)
    assert a.state_key() == b.state_key()
    for probe in range(10):
        assert a.clone().access(probe).hit == b.clone().access(probe).hit


@given(tags=tag_sequences)
@settings(max_examples=100, deadline=None)
def test_lru_inclusion_property(tags):
    """An a-way LRU set's contents are included in a larger LRU set's.

    The classic stack property of LRU, on fully associative caches.
    """
    small = CacheSet(4, make_policy("lru", 4))
    large = CacheSet(8, make_policy("lru", 8))
    for tag in tags:
        small.access(tag)
        large.access(tag)
        assert small.resident_tags() <= large.resident_tags()
