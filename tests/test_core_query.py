"""Tests for the access-sequence query language."""

import pytest

from repro.core import SimulatedSetOracle
from repro.core.query import QueryParseError, parse_query, run_query
from repro.policies import FifoPolicy, LruPolicy, PlruPolicy


def lru_oracle(ways=2):
    return SimulatedSetOracle(LruPolicy(ways))


def report(result):
    """The classic one-line rendering, rebuilt from the structured result."""
    return " ".join(
        f"{outcome.name}={'hit' if outcome.hit else 'miss'}"
        for outcome in result.outcomes
    )


class TestParsing:
    def test_names_and_probes(self):
        query = parse_query("a b a? c?")
        assert query.blocks == (0, 1, 0, 2)
        assert query.probed == (2, 3)
        assert query.names == ("a", "b", "a", "c")

    def test_fresh_blocks_distinct(self):
        query = parse_query("@ @ @?")
        assert len(set(query.blocks)) == 3

    def test_repetition_scalar(self):
        assert parse_query("3*x y").names == ("x", "x", "x", "y")

    def test_repetition_group(self):
        assert parse_query("2*( a b ) c").names == ("a", "b", "a", "b", "c")

    def test_nested_groups(self):
        assert parse_query("2*( a 2*b )").names == ("a", "b", "b", "a", "b", "b")

    def test_errors(self):
        with pytest.raises(QueryParseError):
            parse_query("")
        with pytest.raises(QueryParseError):
            parse_query("2*( a b")  # unbalanced
        with pytest.raises(QueryParseError):
            parse_query("( a )")  # bare parens
        with pytest.raises(QueryParseError):
            parse_query("0*a")
        with pytest.raises(QueryParseError):
            parse_query("a$b")


class TestExecution:
    def test_basic_hit_miss(self):
        result = run_query(lru_oracle(), "a b a? c?")
        assert report(result) == "a=hit c=miss"
        assert result.miss_count == 1
        assert result.hit_count == 1
        assert result.query == "a b a? c?"

    def test_outcome_positions(self):
        result = run_query(lru_oracle(), "a b a? c?")
        assert [outcome.position for outcome in result.outcomes] == [2, 3]

    def test_lru_vs_fifo_divergence(self):
        # The canonical LRU/FIFO separator: touch a, fill past capacity.
        query = "a b a @ a?"
        assert report(run_query(lru_oracle(2), query)) == "a=hit"
        assert report(run_query(SimulatedSetOracle(FifoPolicy(2)), query)) == "a=miss"

    def test_repetition_in_execution(self):
        # Four distinct fresh blocks evict everything from a 4-way set.
        result = run_query(SimulatedSetOracle(LruPolicy(4)), "a b c d 4*@ a?")
        assert report(result) == "a=miss"

    def test_plru_anomaly_expressible(self):
        # In 4-way tree PLRU, hits can protect one side of the tree so a
        # line survives more fresh misses than under LRU.
        result_plru = run_query(SimulatedSetOracle(PlruPolicy(4)), "a b c d a c a?")
        result_lru = run_query(SimulatedSetOracle(LruPolicy(4)), "a b c d a c a?")
        assert report(result_plru) == report(result_lru) == "a=hit"

    def test_probes_see_full_prefix(self):
        # Each probe replays ALL preceding accesses (including earlier
        # probed ones): after a b c the set is {b, c}; the probed access
        # to a then evicts b, so the second probe misses too.
        assert report(run_query(lru_oracle(2), "a b c a? b?")) == "a=miss b=miss"

    def test_probe_replay_not_polluted_by_measurement(self):
        # A probe must not double-count its own access: re-probing the
        # same block twice reports the prefix-state outcome both times
        # in the hit case.
        assert report(run_query(lru_oracle(2), "a b b? b?")) == "b=hit b=hit"
