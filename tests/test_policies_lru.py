"""Tests for LRU and its insertion-policy variants (LIP/BIP/DIP)."""

import pytest

from repro.cache.set import CacheSet
from repro.policies import BipPolicy, DipPolicy, LipPolicy, LruPolicy
from repro.util.rng import SeededRng


def run_trace(policy, tags):
    """Drive a CacheSet and return the hit/miss outcome list."""
    cache_set = CacheSet(policy.ways, policy)
    return [cache_set.access(tag).hit for tag in tags]


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy(2)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)
        cache_set.access(2)
        result = cache_set.access(3)
        assert result.evicted_tag == 1

    def test_touch_refreshes(self):
        policy = LruPolicy(2)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)
        cache_set.access(2)
        cache_set.access(1)  # 2 is now least recent
        result = cache_set.access(3)
        assert result.evicted_tag == 2

    def test_stack_behaviour_known_sequence(self):
        hits = run_trace(LruPolicy(4), [1, 2, 3, 4, 1, 2, 5, 1, 2, 3])
        #                               m  m  m  m  h  h  m  h  h  m
        assert hits == [False] * 4 + [True, True, False, True, True, False]

    def test_state_key_reflects_order(self):
        policy = LruPolicy(3)
        policy.touch(2)
        assert policy.state_key() == (2, 0, 1)

    def test_clone_independent(self):
        policy = LruPolicy(3)
        copy = policy.clone()
        policy.touch(2)
        assert copy.state_key() == (0, 1, 2)

    def test_reset(self):
        policy = LruPolicy(3)
        policy.touch(2)
        policy.reset()
        assert policy.state_key() == (0, 1, 2)

    def test_way_bounds_checked(self):
        with pytest.raises(ValueError):
            LruPolicy(2).touch(2)


class TestLip:
    def test_insertion_at_lru_makes_scans_self_evicting(self):
        # A scanning pattern over ways+1 blocks: under LRU everything
        # thrashes, under LIP the resident blocks survive the scan.
        scan = [1, 2, 3, 4, 5] * 4
        lru_hits = sum(run_trace(LruPolicy(4), scan))
        lip_hits = sum(run_trace(LipPolicy(4), scan))
        assert lru_hits == 0
        assert lip_hits > 0

    def test_hit_promotes(self):
        policy = LipPolicy(2)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)
        cache_set.access(2)
        cache_set.access(2)  # promote 2 to MRU
        result = cache_set.access(3)  # inserted at LRU position
        # 3 was inserted at LRU, so a further miss evicts 3, not 1 or 2.
        result = cache_set.access(4)
        assert result.evicted_tag == 3


class TestBip:
    def test_epsilon_zero_equals_lip(self):
        trace = [1, 2, 3, 4, 5, 1, 2, 6] * 3
        bip = BipPolicy(4, rng=SeededRng(1), epsilon=0.0)
        lip = LipPolicy(4)
        assert run_trace(bip, trace) == run_trace(lip, trace)

    def test_epsilon_one_equals_lru(self):
        trace = [1, 2, 3, 4, 5, 1, 2, 6] * 3
        bip = BipPolicy(4, rng=SeededRng(1), epsilon=1.0)
        lru = LruPolicy(4)
        assert run_trace(bip, trace) == run_trace(lru, trace)

    def test_not_deterministic_flag(self):
        assert BipPolicy.DETERMINISTIC is False
        assert BipPolicy(4).state_key() is None


class TestDip:
    def test_standalone_instance_works(self):
        policy = DipPolicy(4, rng=SeededRng(0))
        cache_set = CacheSet(4, policy)
        for tag in [1, 2, 3, 4, 5, 1, 2, 3]:
            cache_set.access(tag)
        # No crash and set holds exactly 4 blocks.
        assert len(cache_set.resident_tags()) == 4

    def test_component_stacks_stay_consistent(self):
        policy = DipPolicy(4, rng=SeededRng(0))
        cache_set = CacheSet(4, policy)
        for tag in range(20):
            cache_set.access(tag % 6)
        assert sorted(policy._lru._stack) == sorted(policy._bip._stack) == [0, 1, 2, 3]

    def test_shared_context_created_per_cache(self):
        shared = DipPolicy.create_shared(64, SeededRng(0))
        a = DipPolicy(4, shared=shared, set_index=0)
        b = DipPolicy(4, shared=shared, set_index=1)
        assert a._shared is b._shared
