"""Tests for the single-level Cache."""

from repro.cache import Cache, CacheConfig
from repro.policies import PolicyFactory


def small_cache(policy="lru"):
    return Cache(CacheConfig("L1", 1024, 2), policy)  # 8 sets, 2-way


class TestAccessPath:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x100).hit is False
        assert cache.access(0x100).hit is True

    def test_same_line_offsets_hit(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13F).hit is True  # same 64-byte line
        assert cache.access(0x140).hit is False  # next line

    def test_sets_isolated(self):
        cache = small_cache()
        cache.access(0x000)
        cache.access(0x040)  # different set
        assert cache.stats.misses == 2
        assert cache.access(0x000).hit

    def test_eviction_reports_address(self):
        cache = small_cache()
        stride = cache.config.way_size
        cache.access(0)
        cache.access(stride)
        result = cache.access(2 * stride)
        assert result.evicted_address == 0

    def test_stats_accumulate(self):
        cache = small_cache()
        for address in (0, 64, 0, 128, 0):
            cache.access(address)
        assert cache.stats.accesses == 5
        assert cache.stats.hits == 2
        assert cache.stats.misses == 3
        assert cache.stats.fills == 3

    def test_write_and_writeback(self):
        cache = small_cache()
        stride = cache.config.way_size
        cache.access(0, write=True)
        cache.access(stride)
        cache.access(2 * stride)  # evicts dirty line 0
        assert cache.stats.writebacks == 1


class TestLookupTouch:
    def test_miss_does_not_fill(self):
        cache = small_cache()
        assert cache.lookup_touch(0x200) is False
        assert cache.probe(0x200) is False
        assert cache.stats.misses == 1

    def test_hit_counts(self):
        cache = small_cache()
        cache.access(0x200)
        assert cache.lookup_touch(0x200) is True
        assert cache.stats.hits == 1


class TestMaintenance:
    def test_probe_no_side_effects(self):
        cache = small_cache()
        cache.access(0x100)
        before = cache.stats.snapshot()
        assert cache.probe(0x100) is True
        assert cache.stats.accesses == before.accesses

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.invalidate(0x100) is True
        assert cache.probe(0x100) is False
        assert cache.stats.invalidations == 1

    def test_resident_addresses(self):
        cache = small_cache()
        cache.access(0x100)
        cache.access(0x240)
        assert cache.resident_addresses() == {0x100, 0x240}

    def test_flush_keeps_stats(self):
        cache = small_cache()
        cache.access(0x100)
        cache.flush()
        assert cache.probe(0x100) is False
        assert cache.stats.accesses == 1

    def test_reset_clears_stats(self):
        cache = small_cache()
        cache.access(0x100)
        cache.reset()
        assert cache.stats.accesses == 0


class TestPolicyIntegration:
    def test_policy_by_factory(self):
        cache = Cache(CacheConfig("L1", 1024, 2), PolicyFactory("srrip", rrpv_bits=3))
        cache.access(0)
        assert cache.policy_factory.name == "srrip"

    def test_dueling_policy_in_cache(self):
        cache = Cache(CacheConfig("L1", 4096, 4), "dip")
        for address in range(0, 64 * 200, 64):
            cache.access(address)
        assert cache.stats.accesses == 200
