"""Tests for measurement-based geometry inference."""

import pytest

from repro.cache import CacheConfig
from repro.core.geometry import (
    GeometryFinding,
    GeometryInference,
    PlatformAddressOracle,
)
from repro.core.oracle import MissCountOracle
from repro.errors import InferenceError
from repro.hardware import HardwarePlatform, LevelSpec, ProcessorSpec


def platform_for(config: CacheConfig, policy: str = "lru") -> HardwarePlatform:
    spec = ProcessorSpec(
        name="geom",
        description="geometry-test processor",
        levels=(LevelSpec(config, policy),),
    )
    return HardwarePlatform(spec)


def infer(config: CacheConfig, policy: str = "lru", **kwargs) -> GeometryFinding:
    oracle = PlatformAddressOracle(platform_for(config, policy), "L1")
    return GeometryInference(oracle, **kwargs).infer()


class TestGeometryFinding:
    def test_derived_fields(self):
        finding = GeometryFinding(line_size=64, ways=8, total_size=32 * 1024)
        assert finding.way_size == 4096
        assert finding.num_sets == 64
        assert "32 KiB" in finding.describe()


class TestInference:
    @pytest.mark.parametrize(
        "size,ways,line",
        [
            (4 * 1024, 4, 64),
            (32 * 1024, 8, 64),
            (24 * 1024, 6, 64),  # Atom-style non-power-of-two capacity
            (8 * 1024, 2, 32),
            (16 * 1024, 16, 128),
        ],
    )
    def test_recovers_geometry(self, size, ways, line):
        config = CacheConfig("L1", size, ways, line_size=line)
        finding = infer(config)
        assert finding.line_size == line
        assert finding.total_size == size
        assert finding.ways == ways
        assert finding.num_sets == config.num_sets

    @pytest.mark.parametrize("policy", ["fifo", "plru", "bitplru", "srrip"])
    def test_policy_independent(self, policy):
        config = CacheConfig("L1", 8 * 1024, 8)
        finding = infer(config, policy=policy)
        assert finding.total_size == 8 * 1024
        assert finding.ways == 8

    def test_direct_mapped(self):
        config = CacheConfig("L1", 4 * 1024, 1)
        finding = infer(config)
        assert finding.ways == 1
        assert finding.total_size == 4 * 1024

    def test_size_limit_enforced(self):
        config = CacheConfig("L1", 64 * 1024, 8)
        with pytest.raises(InferenceError, match="larger"):
            infer(config, max_size=16 * 1024)


class TestStages:
    def test_line_size_stage(self):
        config = CacheConfig("L1", 8 * 1024, 4, line_size=128)
        oracle = PlatformAddressOracle(platform_for(config), "L1")
        assert GeometryInference(oracle).infer_line_size() == 128

    def test_capacity_stage_exact_on_odd_sizes(self):
        config = CacheConfig("L1", 24 * 1024, 6)
        oracle = PlatformAddressOracle(platform_for(config), "L1")
        assert GeometryInference(oracle).infer_capacity(64) == 24 * 1024

    def test_ways_stage(self):
        config = CacheConfig("L1", 32 * 1024, 8)
        oracle = PlatformAddressOracle(platform_for(config), "L1")
        assert GeometryInference(oracle).infer_ways(32 * 1024) == 8
