"""Tests for candidate-set identification."""

import pytest

from repro.core import (
    CandidateIdentification,
    IdentificationConfig,
    SimulatedSetOracle,
    default_candidates,
)
from repro.policies import LruPolicy, make_policy


class TestDefaultCandidates:
    def test_contains_core_policies(self):
        candidates = default_candidates(8)
        for name in ("lru", "fifo", "plru", "bitplru", "nru", "srrip"):
            assert name in candidates

    def test_excludes_randomized(self):
        candidates = default_candidates(8)
        for name in ("random", "bip", "dip", "brrip", "drrip"):
            assert name not in candidates

    def test_plru_skipped_for_non_power_of_two(self):
        candidates = default_candidates(6)
        assert "plru" not in candidates
        assert "lru" in candidates


class TestIdentification:
    @pytest.mark.parametrize(
        "name", ["lru", "fifo", "plru", "bitplru", "nru", "qlru_h00_m1", "qlru_h11_m2"]
    )
    def test_identifies_registry_policies(self, name):
        oracle = SimulatedSetOracle(make_policy(name, 4))
        result = CandidateIdentification(oracle, ways=4).identify()
        assert result.succeeded
        # Behaviourally identical aliases may win the name tie-break, but
        # the true policy must be among the validated survivors.
        assert name in result.survivors

    def test_srrip_alias_reported_in_survivors(self):
        # SRRIP == qlru_h00_m2 by construction; both must survive.
        oracle = SimulatedSetOracle(make_policy("srrip", 4))
        result = CandidateIdentification(oracle, ways=4).identify()
        assert result.succeeded
        assert "srrip" in result.survivors
        assert "qlru_h00_m2" in result.survivors

    def test_unknown_policy_eliminates_everything(self):
        # A permutation policy deliberately outside the candidate pool:
        # hits at the top two positions swap them, all else identity.
        from repro.core.permutation import standard_miss_perm
        from repro.policies import PermutationPolicy, PermutationSpec
        from repro.policies.permutation import identity

        odd_spec = PermutationSpec(
            4,
            ((1, 0, 2, 3), (1, 0, 2, 3), identity(4), identity(4)),
            standard_miss_perm(4),
        )
        oracle = SimulatedSetOracle(PermutationPolicy(4, odd_spec))
        result = CandidateIdentification(oracle, ways=4).identify()
        assert not result.succeeded
        assert result.survivors == []

    def test_nearly_identical_variants_may_validate_as_alias(self):
        # Identification is consistency-based, not proof: a rightmost
        # victim rule differs from leftmost only when several lines tie
        # at age 3 in a discriminating arrangement, which random
        # screening may never produce.  The library then reports a
        # behaviourally consistent alias, like the paper's methodology
        # would.  What must NOT happen is a validated answer that
        # disagrees with the target on the validation set itself.
        target = make_policy("qlru_h00_m1", 4, victim_rule="rightmost")
        oracle = SimulatedSetOracle(target)
        result = CandidateIdentification(oracle, ways=4).identify()
        if result.succeeded:
            assert result.name.startswith("qlru_h00_m1")

    def test_spec_candidate_can_be_added(self):
        from repro.policies import lru_spec

        oracle = SimulatedSetOracle(LruPolicy(4))
        identification = CandidateIdentification(oracle, ways=4, candidates={})
        identification.add_spec_candidate("mystery", lru_spec(4))
        result = identification.identify()
        assert result.succeeded
        assert result.name == "mystery"

    def test_elimination_records_stage(self):
        oracle = SimulatedSetOracle(LruPolicy(4))
        result = CandidateIdentification(oracle, ways=4).identify()
        assert result.succeeded
        assert "fifo" in result.eliminated

    def test_cost_reported(self):
        oracle = SimulatedSetOracle(LruPolicy(4))
        result = CandidateIdentification(oracle, ways=4).identify()
        assert result.measurements > 0
        assert result.accesses > 0

    def test_config_respected(self):
        oracle = SimulatedSetOracle(LruPolicy(4))
        config = IdentificationConfig(screening_sequences=2, validation_sequences=1)
        result = CandidateIdentification(oracle, ways=4, config=config).identify()
        assert result.succeeded
