"""Tests for repro.obs.history: the run-history database.

Covers the store discipline (WAL file beside the automaton store,
read-paths-never-create, corrupt-unlink recovery), idempotent
fingerprinted ingestion of ledgers and BENCH points, and the backfill
walker's tolerance of broken inputs.
"""

import json

import pytest

from repro.obs import history as obs_history
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics


def make_ledger(name="e_test", wall=1.0, created="2026-08-07T00:00:00Z",
                jobs=2, counters=None, **overrides):
    base = dict(
        name=name,
        created=created,
        wall_seconds=wall,
        params={"seed": 0, "vector": True},
        seed=0,
        jobs=jobs,
        kernel=True,
        git={"sha": "deadbeef" * 5, "dirty": False},
        env={"python": "3.12"},
        counters=counters if counters is not None
        else {"oracle.measurements": 100.0, "kernel.accesses": 5000.0},
        artifacts=[],
    )
    base.update(overrides)
    return obs_ledger.RunLedger(**base)


@pytest.fixture
def db(tmp_path):
    handle = obs_history.HistoryDB(tmp_path / "history-v1.sqlite")
    yield handle
    handle.close()


class TestLocation:
    def test_follows_the_automaton_store_directory(self, tmp_path):
        from repro.kernels import store

        assert obs_history.history_dir() == store.cache_dir()
        assert obs_history.history_path().name == (
            f"history-v{obs_history.SCHEMA_VERSION}.sqlite"
        )

    def test_explicit_override_wins(self, tmp_path):
        obs_history.set_history_dir(tmp_path / "elsewhere")
        try:
            assert obs_history.history_dir() == tmp_path / "elsewhere"
        finally:
            obs_history.set_history_dir(None)

    def test_read_paths_never_create_the_file(self, db):
        assert db.runs() == []
        assert db.stats()["total_runs"] == 0
        assert db.experiments() == []
        assert db.bench_points() == []
        assert not db.path.exists()

    def test_first_record_creates_the_file(self, db):
        assert db.record_ledger(make_ledger()) is not None
        assert db.path.exists()


class TestRecordLedger:
    def test_row_carries_ledger_facts(self, db):
        run_id = db.record_ledger(make_ledger(), source="unit")
        (run,) = db.runs(with_counters=True)
        assert run["id"] == run_id
        assert run["name"] == "e_test"
        assert run["wall_seconds"] == 1.0
        assert run["git_sha"].startswith("deadbeef")
        assert run["jobs"] == 2
        assert run["kernel"] is True
        assert run["vector"] is True
        assert run["source"] == "unit"
        assert run["counters"]["oracle.measurements"] == 100.0

    def test_reingest_is_idempotent(self, db):
        ledger = make_ledger()
        assert db.record_ledger(ledger) is not None
        assert db.record_ledger(ledger) is None
        assert len(db.runs()) == 1

    def test_duplicate_increments_counter(self, db):
        obs_metrics.DEFAULT.reset()
        ledger = make_ledger()
        db.record_ledger(ledger)
        db.record_ledger(ledger)
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["history.record"] == 1
        assert counters["history.duplicate"] == 1

    def test_runs_newest_first_and_filterable(self, db):
        db.record_ledger(make_ledger(created="2026-08-01T00:00:00Z", wall=1.0))
        db.record_ledger(make_ledger(created="2026-08-02T00:00:00Z", wall=2.0))
        db.record_ledger(make_ledger(name="other"))
        runs = db.runs(name="e_test")
        assert [run["wall_seconds"] for run in runs] == [2.0, 1.0]
        assert len(db.runs()) == 3
        assert len(db.runs(limit=1)) == 1

    def test_maps_attach_to_the_run(self, db):
        maps = [{"cells": 16, "jobs": 4, "seconds": 0.5,
                 "sources": {"parallel": 16}}]
        db.record_ledger(make_ledger(), maps=maps)
        (run,) = db.runs()
        assert run["maps"] == maps

    def test_disabled_records_nothing(self, db):
        with obs_history.history_disabled():
            assert db.record_ledger(make_ledger()) is None
        assert not db.path.exists()


class TestBenchPoints:
    PAYLOAD = {
        "schema_version": 1,
        "name": "bench_kernel",
        "created": "2026-08-07T00:00:00Z",
        "params": {"reps": 3},
        "data": {"speedup": 12.5, "interp_seconds": 5.0},
        "metrics": {},
    }

    def test_record_and_query(self, db):
        assert db.record_bench_point(dict(self.PAYLOAD)) is not None
        (point,) = db.bench_points(bench="bench_kernel")
        assert point["data"]["speedup"] == 12.5

    def test_idempotent(self, db):
        db.record_bench_point(dict(self.PAYLOAD))
        assert db.record_bench_point(dict(self.PAYLOAD)) is None
        assert len(db.bench_points()) == 1

    def test_invalid_envelope_raises_before_touching_db(self, db):
        from repro.errors import ResultSchemaError

        with pytest.raises(ResultSchemaError):
            db.record_bench_point({"name": "x"})
        assert not db.path.exists()


class TestCorruption:
    def test_corrupt_file_recovered_once(self, tmp_path):
        path = tmp_path / "history-v1.sqlite"
        path.write_bytes(b"this is not sqlite at all" * 40)
        db = obs_history.HistoryDB(path)
        obs_metrics.DEFAULT.reset()
        assert db.record_ledger(make_ledger()) is not None
        assert len(db.runs()) == 1
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters.get("history.corrupt") == 1
        db.close()

    def test_stats_on_missing_file(self, db):
        info = db.stats()
        assert info["exists"] is False
        assert info["total_runs"] == 0
        assert info["total_bench_points"] == 0


class TestIngestPaths:
    def test_directory_backfill(self, tmp_path, db, monkeypatch):
        monkeypatch.setattr(obs_history, "get_history", lambda: db)
        results = tmp_path / "results"
        results.mkdir()
        obs_ledger.write_ledger(
            make_ledger(), results / "e_test.ledger.json"
        )
        (results / "BENCH_kernel.json").write_text(
            json.dumps(TestBenchPoints.PAYLOAD)
        )
        (results / "ignored.txt").write_text("not ingested")
        report = obs_history.ingest_paths([results])
        assert report["recorded"] == 2
        assert report["errors"] == []
        # Second pass: everything is a duplicate.
        again = obs_history.ingest_paths([results])
        assert again["recorded"] == 0
        assert again["duplicates"] == 2

    def test_broken_inputs_reported_not_raised(self, tmp_path, db, monkeypatch):
        monkeypatch.setattr(obs_history, "get_history", lambda: db)
        results = tmp_path / "results"
        results.mkdir()
        (results / "trunc.ledger.json").write_text('{"half')
        (results / "BENCH_bad.json").write_text('{"name": "x"}')
        report = obs_history.ingest_paths(
            [results, results / "absent.ledger.json"]
        )
        assert report["recorded"] == 0
        assert len(report["errors"]) == 3

    def test_clear_removes_everything(self, db, monkeypatch):
        monkeypatch.setattr(obs_history, "get_history", lambda: db)
        db.record_ledger(make_ledger())
        db.record_bench_point(dict(TestBenchPoints.PAYLOAD))
        assert obs_history.clear() == 2
        assert db.runs() == []
        assert db.bench_points() == []
