"""Tests for repro.obs.ledger: schema, round trips, reporting, diffing."""

import json
from pathlib import Path

import pytest

from repro.errors import ResultSchemaError
from repro.obs import ledger as obs_ledger
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    build_ledger,
    diff_ledgers,
    format_ledger,
    ledger_path_for,
    read_ledger,
    validate_ledger,
    write_ledger,
)


def make_ledger(**overrides):
    base = dict(
        name="unit",
        created="2026-08-07T00:00:00Z",
        wall_seconds=1.25,
        params={"policies": ["lru"]},
        seed=0,
        jobs=2,
        kernel=True,
        git={"sha": "abc123", "dirty": False},
        env={"python": "3.11.7"},
        counters={"oracle.measurements": 10, "kernel.calls": 3},
        artifacts=[{"path": "x.txt", "sha256": "00", "bytes": 1}],
    )
    base.update(overrides)
    return RunLedger(**base)


class TestPaths:
    def test_metrics_sidecar_maps_to_ledger(self):
        assert ledger_path_for("out/e3.metrics.json").name == "e3.ledger.json"

    def test_other_artifacts_get_suffix_appended(self):
        assert ledger_path_for("out/e3.txt").name == "e3.txt.ledger.json"


class TestSchema:
    def test_round_trip(self):
        ledger = make_ledger()
        back = RunLedger.from_json(ledger.to_json())
        assert back == ledger

    def test_validate_accepts_a_built_ledger(self):
        assert validate_ledger(make_ledger().to_dict())

    @pytest.mark.parametrize("field", [
        "ledger_schema_version", "name", "created", "wall_seconds",
        "params", "seed", "jobs", "kernel", "git", "env", "counters",
        "artifacts",
    ])
    def test_missing_field_rejected(self, field):
        payload = make_ledger().to_dict()
        del payload[field]
        with pytest.raises(ResultSchemaError, match=field):
            validate_ledger(payload)

    def test_wrong_version_rejected(self):
        payload = make_ledger().to_dict()
        payload["ledger_schema_version"] = LEDGER_SCHEMA_VERSION + 1
        with pytest.raises(ResultSchemaError, match="ledger_schema_version"):
            validate_ledger(payload)

    def test_non_json_rejected(self):
        with pytest.raises(ResultSchemaError, match="JSON"):
            RunLedger.from_json("{nope")

    def test_bad_artifact_record_rejected(self):
        payload = make_ledger().to_dict()
        payload["artifacts"] = [{"path": "x"}]
        with pytest.raises(ResultSchemaError, match="artifact"):
            validate_ledger(payload)


class TestBuild:
    def test_build_digests_existing_artifacts(self, tmp_path):
        artifact = tmp_path / "table.txt"
        artifact.write_text("hello\n")
        ledger = build_ledger(
            name="built",
            params={"seed": 3},
            wall_seconds=0.5,
            seed=3,
            jobs=0,
            kernel=True,
            counters={"oracle.measurements": 1},
            artifacts=[artifact, tmp_path / "missing.txt"],
        )
        assert [a["path"] for a in ledger.artifacts] == ["table.txt"]
        assert ledger.artifacts[0]["bytes"] == 6
        assert len(ledger.artifacts[0]["sha256"]) == 64
        validate_ledger(ledger.to_dict())

    def test_build_stringifies_unjsonable_params(self):
        ledger = build_ledger(name="p", params={"path": object()})
        assert isinstance(ledger.params["path"], str)

    def test_git_revision_in_a_repo(self):
        info = obs_ledger.git_revision(cwd=".")
        # The test suite runs inside the repository checkout.
        if info is not None:
            assert set(info) == {"sha", "dirty"}
            assert len(info["sha"]) == 40

    def test_git_revision_outside_a_repo(self, tmp_path):
        assert obs_ledger.git_revision(cwd=tmp_path) is None

    def test_write_and_read(self, tmp_path):
        path = write_ledger(make_ledger(), tmp_path / "run.ledger.json")
        assert read_ledger(path) == make_ledger()


class TestReporting:
    def test_format_ledger_mentions_key_facts(self):
        text = format_ledger(make_ledger())
        assert "unit" in text
        assert "abc123" in text[:400] or "abc123" in text
        assert "oracle.measurements" in text

    def test_diff_shows_deltas_and_ratios(self):
        a = make_ledger(counters={"oracle.measurements": 100}, wall_seconds=2.0)
        b = make_ledger(counters={"oracle.measurements": 150}, wall_seconds=1.0)
        text = diff_ledgers(a, b)
        assert "wall_seconds" in text
        assert "oracle.measurements" in text
        assert "+50" in text
        assert "1.50x" in text

    def test_diff_handles_counters_only_on_one_side(self):
        a = make_ledger(counters={})
        b = make_ledger(counters={"kernel.calls": 5})
        text = diff_ledgers(a, b)
        assert "kernel.calls" in text


class TestEdgeCases:
    def test_unknown_future_schema_version_rejected(self):
        payload = make_ledger().to_dict()
        payload["ledger_schema_version"] = LEDGER_SCHEMA_VERSION + 7
        with pytest.raises(ResultSchemaError, match="unsupported"):
            validate_ledger(payload)

    def test_missing_key_counters_render_gracefully(self):
        # A ledger with none of the KEY_COUNTERS must still format and
        # diff — those counters are surfaced when present, never required.
        bare = make_ledger(counters={})
        assert "wall_seconds" in format_ledger(bare)
        text = diff_ledgers(bare, bare)
        assert "wall_seconds" in text
        assert "oracle.measurements" not in text

    def test_truncated_json_rejected_with_schema_error(self):
        with pytest.raises(ResultSchemaError, match="not valid JSON"):
            RunLedger.from_json('{"name": "half')


class TestVerifyArtifacts:
    def _written(self, tmp_path):
        artifact = tmp_path / "table.txt"
        artifact.write_text("rows\n")
        ledger = build_ledger(name="v", artifacts=[artifact])
        return artifact, ledger

    def test_intact_artifacts_verify_clean(self, tmp_path):
        _, ledger = self._written(tmp_path)
        assert obs_ledger.verify_artifacts(ledger, tmp_path) == []

    def test_digest_mismatch_detected(self, tmp_path):
        artifact, ledger = self._written(tmp_path)
        artifact.write_text("rows\ntampered\n")
        problems = obs_ledger.verify_artifacts(ledger, tmp_path)
        assert len(problems) == 1
        assert problems[0][0] == "table.txt"
        assert "digest mismatch" in problems[0][1]

    def test_missing_artifact_flagged(self, tmp_path):
        artifact, ledger = self._written(tmp_path)
        artifact.unlink()
        assert obs_ledger.verify_artifacts(ledger, tmp_path) == [
            ("table.txt", "missing")
        ]


class TestValidatorCli:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = write_ledger(make_ledger(), tmp_path / "ok.ledger.json")
        assert obs_ledger.main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file_exits_one(self, tmp_path, capsys):
        path = tmp_path / "bad.ledger.json"
        path.write_text(json.dumps({"name": "x"}))
        assert obs_ledger.main([str(path)]) == 1

    def test_no_arguments_exits_two(self, capsys):
        assert obs_ledger.main([]) == 2

    def test_verify_flag_catches_tampered_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "table.txt"
        artifact.write_text("rows\n")
        ledger = build_ledger(name="v", artifacts=[artifact])
        path = write_ledger(ledger, tmp_path / "v.ledger.json")
        assert obs_ledger.main(["--verify", str(path)]) == 0
        artifact.write_text("tampered\n")
        assert obs_ledger.main(["--verify", str(path)]) == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_module_round_trip(self, tmp_path):
        # A ledger written by the library validates through the module
        # entry point exactly as CI invokes it.
        import os
        import subprocess
        import sys

        import repro

        path = write_ledger(make_ledger(), tmp_path / "run.ledger.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.ledger", str(path)],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout
