"""Tests for repro.obs.dash: the static HTML dashboard renderer.

The renderer is stdlib-only and file-based, so the tests drive it from
a throwaway history database and assert on the written pages: the fleet
index links every experiment, trend pages exist per experiment, flagged
runs carry an explicit REGRESSED label (text, not color alone), bench
sparklines render, flame pages parse span trees from trace JSONL, and
every page is well-formed enough to tag-balance.
"""

import json
from html.parser import HTMLParser

import pytest

from repro.obs import dash as obs_dash
from repro.obs import history as obs_history
from tests.test_obs_history import TestBenchPoints, make_ledger
from tests.test_obs_regress import record_series

VOID_TAGS = {
    "meta", "br", "hr", "img", "input", "link", "circle", "line",
    "polyline", "path",
}


class TagBalanceChecker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack: list[str] = []
        self.errors: list[str] = []

    def handle_starttag(self, tag, attrs):
        if tag not in VOID_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"unbalanced </{tag}> at {self.getpos()}")
        else:
            self.stack.pop()


def assert_well_formed(path):
    checker = TagBalanceChecker()
    checker.feed(path.read_text(encoding="utf-8"))
    assert not checker.errors, f"{path.name}: {checker.errors[:3]}"
    assert not checker.stack, f"{path.name}: unclosed {checker.stack[:5]}"


@pytest.fixture
def db(tmp_path):
    handle = obs_history.HistoryDB(tmp_path / "history-v1.sqlite")
    yield handle
    handle.close()


class TestRenderDashboard:
    def test_empty_history_still_renders_an_index(self, tmp_path, db):
        report = obs_dash.render_dashboard(tmp_path / "dash", db=db)
        index = tmp_path / "dash" / "index.html"
        assert index.exists()
        assert report["runs"] == 0
        assert "no runs recorded" in index.read_text()
        assert_well_formed(index)

    def test_experiment_pages_linked_from_index(self, tmp_path, db):
        record_series(db, [1.0, 1.1], name="e3_missratio")
        record_series(db, [2.0], name="e8_agreement")
        report = obs_dash.render_dashboard(tmp_path / "dash", db=db)
        assert report["experiments"] == 2
        index = (tmp_path / "dash" / "index.html").read_text()
        assert "exp-e3_missratio.html" in index
        assert "exp-e8_agreement.html" in index
        exp = tmp_path / "dash" / "exp-e3_missratio.html"
        assert exp.exists()
        text = exp.read_text()
        assert "wall time per run" in text
        assert "deadbeef" in text  # git sha in the run table
        assert_well_formed(exp)

    def test_flagged_run_renders_regressed_label(self, tmp_path, db):
        record_series(db, [1.0, 1.0, 3.0], name="e3_missratio")
        report = obs_dash.render_dashboard(tmp_path / "dash", db=db)
        assert report["flagged"] == 1
        index = (tmp_path / "dash" / "index.html").read_text()
        exp = (tmp_path / "dash" / "exp-e3_missratio.html").read_text()
        # Status is carried by text, never color alone.
        assert "REGRESSED" in index
        assert "REGRESSED" in exp

    def test_steady_history_is_unflagged(self, tmp_path, db):
        record_series(db, [1.0, 1.0, 1.0], name="e3_missratio")
        report = obs_dash.render_dashboard(tmp_path / "dash", db=db)
        assert report["flagged"] == 0
        assert "REGRESSED" not in (
            tmp_path / "dash" / "exp-e3_missratio.html"
        ).read_text()

    def test_bench_page_renders_series_sparklines(self, tmp_path, db):
        db.record_bench_point(dict(TestBenchPoints.PAYLOAD))
        second = dict(TestBenchPoints.PAYLOAD)
        second["data"] = {"speedup": 13.0, "interp_seconds": 4.8}
        db.record_bench_point(second)
        obs_dash.render_dashboard(tmp_path / "dash", db=db)
        bench = tmp_path / "dash" / "bench.html"
        assert bench.exists()
        text = bench.read_text()
        assert "bench_kernel" in text
        assert "speedup" in text
        assert "<svg" in text
        assert_well_formed(bench)

    def test_flame_pages_from_trace_jsonl(self, tmp_path, db):
        record_series(db, [1.0], name="e3_missratio")
        results = tmp_path / "results"
        results.mkdir()
        events = [
            {"kind": "span.start", "id": "1", "span": "runner.map",
             "parent": None},
            {"kind": "span.start", "id": "1.1", "span": "cell", "parent": "1"},
            {"kind": "span.end", "id": "1.1", "span": "cell", "seconds": 0.25},
            {"kind": "span.end", "id": "1", "span": "runner.map",
             "seconds": 1.0},
        ]
        (results / "e3_missratio.trace.jsonl").write_text(
            "\n".join(json.dumps(event) for event in events) + "\n"
        )
        obs_dash.render_dashboard(
            tmp_path / "dash", db=db, results_dir=results
        )
        flame = tmp_path / "dash" / "flame-e3_missratio.html"
        assert flame.exists()
        text = flame.read_text()
        assert "runner.map" in text
        assert "cell" in text
        assert_well_formed(flame)
        assert "flame-e3_missratio.html" in (
            tmp_path / "dash" / "index.html"
        ).read_text()

    def test_unreadable_trace_is_skipped(self, tmp_path, db):
        results = tmp_path / "results"
        results.mkdir()
        (results / "junk.trace.jsonl").write_text("not json at all\n")
        obs_dash.render_dashboard(
            tmp_path / "dash", db=db, results_dir=results
        )
        assert not (tmp_path / "dash" / "flame-junk.html").exists()

    def test_every_page_is_well_formed(self, tmp_path, db):
        record_series(db, [1.0, 1.0, 3.0], name="e3_missratio")
        record_series(db, [2.0], name="e8_agreement")
        db.record_bench_point(dict(TestBenchPoints.PAYLOAD))
        report = obs_dash.render_dashboard(tmp_path / "dash", db=db)
        assert len(report["pages"]) >= 4
        for page in report["pages"]:
            assert_well_formed(tmp_path / "dash" / page.split("/")[-1])


class TestSparkline:
    def test_single_value_still_draws(self):
        svg = obs_dash._sparkline([1.0])
        assert "<svg" in svg and "polyline" in svg

    def test_empty_series_degrades_to_label(self):
        assert "no data" in obs_dash._sparkline([])

    def test_escapes_labels(self):
        svg = obs_dash._sparkline([1.0, 2.0], labels=["<b>", "&x"])
        assert "<b>" not in svg
        assert "&lt;b&gt;" in svg
