"""Smoke tests for the example scripts.

Each example must at least import cleanly (catching API drift), and the
cheap ones are executed end to end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        for expected in (
            "quickstart",
            "processor_zoo",
            "policy_performance",
            "noisy_measurement",
            "predictability_report",
            "survey_unknown_machine",
            "wcet_analysis",
            "sliced_cache",
        ):
            assert expected in ALL_EXAMPLES

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_cleanly(self, name):
        module = load_example(name)
        assert hasattr(module, "main")

    def test_wcet_analysis_runs(self, capsys):
        load_example("wcet_analysis").main()
        out = capsys.readouterr().out
        assert "proven hits" in out

    def test_sliced_cache_runs(self, capsys):
        load_example("sliced_cache").main()
        out = capsys.readouterr().out
        assert "exact" in out
