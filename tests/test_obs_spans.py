"""Tests for repro.obs.spans: ids, nesting, adoption, and metrics."""

import random

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import trace as obs_trace
from repro.obs.spans import adopt, current_span, span, traced


@pytest.fixture(autouse=True)
def _clean_state():
    obs_spans.reset()
    obs_metrics.DEFAULT.reset()
    obs_trace.uninstall()
    yield
    obs_spans.reset()
    obs_trace.uninstall()


class TestSpanIds:
    def test_top_level_spans_number_from_one(self):
        with span("a") as first:
            assert first == "1"
        with span("b") as second:
            assert second == "2"

    def test_children_extend_the_parent_path(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert inner == f"{outer}.1"
            with span("inner") as again:
                assert again == f"{outer}.2"

    def test_current_span_tracks_the_innermost(self):
        assert current_span() is None
        with span("a") as a:
            assert current_span() == a
            with span("b") as b:
                assert current_span() == b
            assert current_span() == a
        assert current_span() is None

    def test_reset_restarts_numbering(self):
        with span("a"):
            pass
        obs_spans.reset()
        with span("a") as path:
            assert path == "1"


class TestSpanEventsAndMetrics:
    def test_events_carry_id_parent_and_seconds(self):
        with obs_trace.tracing() as tracer:
            with span("work", flavor="unit"):
                with span("step"):
                    pass
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == ["span.start", "span.start", "span.end", "span.end"]
        outer_start, inner_start, inner_end, outer_end = tracer.events
        assert outer_start["span"] == "work"
        assert outer_start["parent"] is None
        assert outer_start["flavor"] == "unit"
        assert inner_start["parent"] == outer_start["id"]
        assert inner_end["id"] == inner_start["id"]
        assert inner_end["seconds"] >= 0
        assert outer_end["seconds"] >= inner_end["seconds"]

    def test_seconds_observed_without_a_tracer(self):
        with span("quiet"):
            pass
        snapshot = obs_metrics.DEFAULT.snapshot()
        assert snapshot["observations"]["span.seconds.quiet"]["count"] == 1

    def test_span_closes_on_exception(self):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        assert current_span() is None
        snapshot = obs_metrics.DEFAULT.snapshot()
        assert snapshot["observations"]["span.seconds.doomed"]["count"] == 1

    def test_traced_decorator_bare_and_named(self):
        @traced
        def plain():
            return current_span()

        @traced("custom.name")
        def named():
            return current_span()

        assert plain() == "1"
        assert named() == "2"
        observations = obs_metrics.DEFAULT.snapshot()["observations"]
        assert observations["span.seconds.plain"]["count"] == 1
        assert observations["span.seconds.custom.name"]["count"] == 1


class TestNestingProperty:
    def test_random_nesting_is_well_formed(self):
        """Property: start/end events form a balanced tree with correct
        parent pointers, whatever the nesting pattern."""
        rng = random.Random(7)

        with obs_trace.tracing() as tracer:

            def grow(depth):
                for _ in range(rng.randint(1, 3)):
                    with span(f"n{depth}"):
                        if depth < 4 and rng.random() < 0.6:
                            grow(depth + 1)

            grow(0)

        stack = []
        seen_ids = set()
        for event in tracer.events:
            if event["kind"] == "span.start":
                expected_parent = stack[-1] if stack else None
                assert event["parent"] == expected_parent
                assert event["id"] not in seen_ids
                seen_ids.add(event["id"])
                if expected_parent is not None:
                    assert event["id"].startswith(expected_parent + ".")
                stack.append(event["id"])
            elif event["kind"] == "span.end":
                assert stack and stack[-1] == event["id"]
                stack.pop()
        assert stack == []


class TestAdopt:
    def test_adopted_spans_nest_under_the_foreign_parent(self):
        with obs_trace.tracing() as tracer:
            with adopt("9.9", "w3"):
                with span("cell") as path:
                    assert path == "9.9.w3.1"
                with span("cell") as path:
                    assert path == "9.9.w3.2"
        starts = [e for e in tracer.events if e["kind"] == "span.start"]
        assert all(e["parent"] == "9.9" for e in starts)

    def test_adopt_restores_previous_root(self):
        with span("outer") as outer:
            with adopt("7", "w0"):
                with span("borrowed") as borrowed:
                    assert borrowed == "7.w0.1"
            with span("back") as back:
                assert back == f"{outer}.1"

    def test_adopt_without_parent_uses_bare_prefix(self):
        with adopt(None, "w5"):
            with span("cell") as path:
                assert path == "w5.1"
            assert current_span() is None
