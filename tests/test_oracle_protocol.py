"""The unified OracleProtocol surface: batched query + provenance.

Covers the API-redesign contract: ``query`` is the canonical batched
entry point on every oracle, results are bit-identical to the scalar
``count_misses`` loop, the legacy ``count_misses_many`` shape is a thin
wrapper, and ``provenance`` exists exactly when answers are a pure
function of the request.
"""

from __future__ import annotations

from collections.abc import Sequence

import pytest

from repro.core.oracle import (
    CachingOracle,
    MissCountOracle,
    OracleProtocol,
    SimulatedSetOracle,
    VotingOracle,
    policy_provenance,
)
from repro.errors import MeasurementError
from repro.hardware import HardwarePlatform, HardwareSetOracle, NoiseModel, get_processor
from repro.policies import PermutationPolicy, make_policy
from repro.policies.permutation import lru_spec
from repro.util.rng import SeededRng


def lru_oracle(ways: int = 4) -> SimulatedSetOracle:
    return SimulatedSetOracle(make_policy("lru", ways))


REQUESTS = [
    ([], [0, 1, 2, 3]),
    ([0, 1, 2, 3], [0, 1, 2, 3]),
    ([0, 1, 2, 3, 4], [0]),
    ([0, 1, 2, 3], [4, 0, 1, 2]),
    ([0, 1, 2, 3, 4], [0]),  # duplicate of an earlier request
]


class CountingOracle(MissCountOracle):
    """Deterministic scalar-only inner that counts protocol traffic."""

    def __init__(self, ways: int = 4) -> None:
        self.ways = ways
        self._inner = lru_oracle(ways)
        self.scalar_calls = 0
        self.query_calls = 0
        self.query_requests = 0

    def provenance(self) -> str | None:
        return self._inner.provenance()

    def count_misses(self, setup: Sequence[int], probe: Sequence[int]) -> int:
        self.scalar_calls += 1
        return self._inner.count_misses(setup, probe)

    def query(self, requests):
        self.query_calls += 1
        self.query_requests += len(requests)
        return super().query(requests)


class TestProtocolShape:
    def test_every_oracle_is_an_oracle_protocol(self):
        sim = lru_oracle()
        assert isinstance(sim, OracleProtocol)
        assert isinstance(VotingOracle(sim), OracleProtocol)
        assert isinstance(CachingOracle(sim), OracleProtocol)
        platform = HardwarePlatform(get_processor("atom-d525-like"))
        hw = HardwareSetOracle(platform, "L1", max_blocks=16)
        assert isinstance(hw, OracleProtocol)
        assert isinstance(hw, MissCountOracle)

    def test_count_misses_many_is_a_deprecated_query_wrapper(self):
        with pytest.deprecated_call(match="count_misses_many"):
            legacy = lru_oracle().count_misses_many(REQUESTS)
        assert legacy == lru_oracle().query(REQUESTS)

    def test_query_empty_batch(self):
        assert lru_oracle().query([]) == []
        assert VotingOracle(lru_oracle()).query([]) == []

    def test_scalar_override_still_governs_query(self):
        # Subclasses that only override the scalar primitive (the test
        # suite's noisy stubs do) must see every batched request routed
        # through their override.
        oracle = CountingOracle()
        result = oracle.query(REQUESTS)
        assert oracle.scalar_calls == len(REQUESTS)
        assert result == lru_oracle().query(REQUESTS)


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("name", ["lru", "fifo", "plru", "srrip"])
    def test_simulated(self, name):
        batched = SimulatedSetOracle(make_policy(name, 4)).query(REQUESTS)
        scalar_oracle = SimulatedSetOracle(make_policy(name, 4))
        scalar = [scalar_oracle.count_misses(s, p) for s, p in REQUESTS]
        assert batched == scalar

    def test_simulated_cost_accounting_matches(self):
        batched = lru_oracle()
        batched.query(REQUESTS)
        scalar = lru_oracle()
        for setup, probe in REQUESTS:
            scalar.count_misses(setup, probe)
        assert (batched.measurements, batched.accesses) == (
            scalar.measurements,
            scalar.accesses,
        )

    def test_caching(self):
        batched = CachingOracle(lru_oracle())
        scalar = CachingOracle(lru_oracle())
        assert batched.query(REQUESTS) == [
            scalar.count_misses(s, p) for s, p in REQUESTS
        ]
        assert (batched.cache_hits, batched.cache_misses) == (
            scalar.cache_hits,
            scalar.cache_misses,
        )

    def test_hardware(self):
        platform = HardwarePlatform(get_processor("atom-d525-like"))
        oracle = HardwareSetOracle(platform, "L1", max_blocks=16)
        batched = oracle.query(REQUESTS)
        fresh = HardwareSetOracle(
            HardwarePlatform(get_processor("atom-d525-like")), "L1", max_blocks=16
        )
        assert batched == [fresh.count_misses(s, p) for s, p in REQUESTS]


class TestVotingBatchPath:
    @pytest.mark.parametrize("aggregate", ["majority", "min", "median"])
    def test_parity_with_scalar(self, aggregate):
        batched = VotingOracle(lru_oracle(), repetitions=5, aggregate=aggregate)
        scalar = VotingOracle(lru_oracle(), repetitions=5, aggregate=aggregate)
        assert batched.query(REQUESTS) == [
            scalar.count_misses(s, p) for s, p in REQUESTS
        ]

    @pytest.mark.parametrize("aggregate", ["majority", "min", "median"])
    def test_inner_sample_count_matches_scalar(self, aggregate):
        # The majority short-circuit must survive batching: a request
        # decided in round k consumes k samples, exactly as the scalar
        # loop's early exit does.
        batched_inner = CountingOracle()
        VotingOracle(batched_inner, repetitions=5, aggregate=aggregate).query(REQUESTS)
        scalar_inner = CountingOracle()
        voter = VotingOracle(scalar_inner, repetitions=5, aggregate=aggregate)
        for setup, probe in REQUESTS:
            voter.count_misses(setup, probe)
        assert batched_inner.query_requests == scalar_inner.scalar_calls

    def test_majority_short_circuit_saves_rounds(self):
        inner = CountingOracle()
        VotingOracle(inner, repetitions=5).query(REQUESTS)
        # Deterministic inner: every request decided after 3 of 5 rounds.
        assert inner.query_requests == 3 * len(REQUESTS)


class TestProvenance:
    def test_registry_policy(self):
        assert policy_provenance(make_policy("lru", 4)) == "policy:lru|()|ways=4"

    def test_ways_distinguish(self):
        assert policy_provenance(make_policy("lru", 4)) != policy_provenance(
            make_policy("lru", 8)
        )

    def test_randomized_policy_has_none(self):
        policy = make_policy("random", 4, rng=SeededRng(0))
        assert policy_provenance(policy) is None

    def test_permutation_policy_digest(self):
        first = policy_provenance(PermutationPolicy(4, lru_spec(4)))
        second = policy_provenance(PermutationPolicy(4, lru_spec(4)))
        assert first == second
        assert first is not None and first.startswith("spec:")
        from repro.policies.permutation import fifo_spec

        assert policy_provenance(PermutationPolicy(4, fifo_spec(4))) != first

    def test_simulated_oracle(self):
        assert lru_oracle().provenance() == "sim|policy:lru|()|ways=4"
        random_policy = make_policy("random", 4, rng=SeededRng(0))
        assert SimulatedSetOracle(random_policy).provenance() is None

    def test_voting_oracle_wraps_inner(self):
        voter = VotingOracle(lru_oracle(), repetitions=3, aggregate="min")
        assert voter.provenance() == "vote[minx3]|sim|policy:lru|()|ways=4"
        noisy = SimulatedSetOracle(make_policy("random", 4, rng=SeededRng(0)))
        assert VotingOracle(noisy).provenance() is None

    def test_caching_oracle_passes_through(self):
        assert CachingOracle(lru_oracle()).provenance() == lru_oracle().provenance()

    def test_hardware_oracle_noise_free(self):
        platform = HardwarePlatform(get_processor("atom-d525-like"), seed=3)
        oracle = HardwareSetOracle(platform, "L1", max_blocks=16)
        provenance = oracle.provenance()
        assert provenance is not None
        assert provenance.startswith("hw|atom-d525-like|L1|")
        assert "seed=3" in provenance

    def test_hardware_oracle_noisy_has_none(self):
        spec = get_processor("atom-d525-like")
        noisy = type(spec)(
            name=spec.name,
            description=spec.description,
            levels=spec.levels,
            page_size=spec.page_size,
            noise=NoiseModel(counter_noise_rate=0.01),
        )
        oracle = HardwareSetOracle(HardwarePlatform(noisy), "L1", max_blocks=16)
        assert oracle.provenance() is None

    def test_voting_repetitions_validated(self):
        with pytest.raises(MeasurementError):
            VotingOracle(lru_oracle(), repetitions=0)
