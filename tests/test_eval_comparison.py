"""Tests for the policy agreement matrix."""

import pytest

from repro.eval import agreement_matrix
from repro.policies import FifoPolicy, LruPolicy, PlruPolicy, make_policy


class TestAgreementMatrix:
    def make(self):
        policies = {
            "lru": LruPolicy(4),
            "fifo": FifoPolicy(4),
            "plru": PlruPolicy(4),
        }
        return agreement_matrix(policies, accesses=5000, seed=0)

    def test_diagonal_is_one(self):
        matrix = self.make()
        for name in matrix.policies:
            assert matrix.value(name, name) == 1.0

    def test_symmetric(self):
        matrix = self.make()
        for a in matrix.policies:
            for b in matrix.policies:
                assert matrix.value(a, b) == matrix.value(b, a)

    def test_plru_closer_to_lru_than_fifo(self):
        # PLRU approximates LRU; FIFO ignores hits entirely.
        matrix = self.make()
        assert matrix.value("plru", "lru") > matrix.value("fifo", "lru")

    def test_high_agreement_overall(self):
        # The motivating observation of E8: random streams rarely
        # separate policies, hence crafted sequences are needed.
        matrix = self.make()
        assert matrix.value("fifo", "lru") > 0.8

    def test_rows_render(self):
        matrix = self.make()
        rows = matrix.rows()
        assert len(rows) == 3
        assert rows[0][0] == matrix.policies[0]

    def test_mixed_ways_rejected(self):
        with pytest.raises(ValueError):
            agreement_matrix({"a": LruPolicy(2), "b": LruPolicy(4)})
