"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig
from repro.policies import available_policies, make_policy

#: Registry names of deterministic policies usable at any associativity.
DETERMINISTIC_ANY_WAYS = [
    name
    for name in available_policies()
    if name not in ("permutation", "plru", "random", "bip", "dip", "brrip", "drrip")
]

#: Deterministic policies that additionally require power-of-two ways.
DETERMINISTIC_POW2_ONLY = ["plru"]

#: Randomized policies (no state_key, need an rng).
RANDOMIZED = ["random", "bip", "dip", "brrip", "drrip"]


@pytest.fixture(autouse=True)
def _isolated_automaton_store(tmp_path_factory):
    """Route the on-disk stores to a per-test temp directory.

    The automaton store (and with it the measurement DB and run-history
    DB, whose directories follow the store's) defaults to a repo-local
    ``.repro-cache/``; tests must neither read a developer's warm cache
    (hiding cold-path bugs) nor litter the working tree.  Each store's
    handle and memos are dropped on both sides so no state crosses
    tests.
    """
    from repro import measuredb
    from repro.kernels import store
    from repro.obs import history

    store.set_cache_dir(tmp_path_factory.mktemp("repro-cache"))
    measuredb.set_db_dir(None)
    measuredb.set_hits_cache_enabled(False)
    measuredb.reset()
    history.set_history_dir(None)
    history.reset()
    yield
    store.set_cache_dir(None)
    measuredb.set_db_dir(None)
    measuredb.set_hits_cache_enabled(False)
    measuredb.reset()
    history.set_history_dir(None)
    history.reset()


@pytest.fixture
def l1_config() -> CacheConfig:
    """A small L1-like configuration: 4 KiB, 4-way, 16 sets."""
    return CacheConfig("L1", 4 * 1024, 4)


@pytest.fixture
def tiny_config() -> CacheConfig:
    """A deliberately tiny cache: 512 B, 2-way, 4 sets."""
    return CacheConfig("tiny", 512, 2)


def all_deterministic_policies(ways: int):
    """(name, policy) pairs for every deterministic policy at ``ways``."""
    names = list(DETERMINISTIC_ANY_WAYS)
    if ways & (ways - 1) == 0:
        names += DETERMINISTIC_POW2_ONLY
    return [(name, make_policy(name, ways)) for name in sorted(names)]
