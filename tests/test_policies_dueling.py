"""Tests for the set-dueling controller."""

import pytest

from repro.errors import ConfigurationError
from repro.policies.dueling import DuelController


class TestConstruction:
    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            DuelController(0)
        with pytest.raises(ConfigurationError):
            DuelController(8, psel_bits=0)

    def test_leader_sets_disjoint(self):
        controller = DuelController(64)
        primaries = {s for s in range(64) if controller.is_primary_leader(s)}
        secondaries = {s for s in range(64) if controller.is_secondary_leader(s)}
        assert primaries and secondaries
        assert not primaries & secondaries


class TestSteering:
    def test_neutral_start_uses_secondary_boundary(self):
        controller = DuelController(64)
        follower = next(
            s
            for s in range(64)
            if not controller.is_primary_leader(s)
            and not controller.is_secondary_leader(s)
        )
        # At the exact midpoint the controller picks the secondary.
        assert controller.use_primary(follower) is False

    def test_primary_leader_misses_steer_to_secondary(self):
        controller = DuelController(64)
        leader = next(s for s in range(64) if controller.is_primary_leader(s))
        follower = next(
            s
            for s in range(64)
            if not controller.is_primary_leader(s)
            and not controller.is_secondary_leader(s)
        )
        for _ in range(100):
            controller.record_miss(leader)
        assert controller.use_primary(follower) is False

    def test_secondary_leader_misses_steer_to_primary(self):
        controller = DuelController(64)
        leader = next(s for s in range(64) if controller.is_secondary_leader(s))
        follower = next(
            s
            for s in range(64)
            if not controller.is_primary_leader(s)
            and not controller.is_secondary_leader(s)
        )
        for _ in range(100):
            controller.record_miss(leader)
        assert controller.use_primary(follower) is True

    def test_leaders_never_switch(self):
        controller = DuelController(64)
        primary = next(s for s in range(64) if controller.is_primary_leader(s))
        secondary = next(s for s in range(64) if controller.is_secondary_leader(s))
        for _ in range(200):
            controller.record_miss(primary)
        assert controller.use_primary(primary) is True
        assert controller.use_primary(secondary) is False

    def test_follower_misses_do_not_move_psel(self):
        controller = DuelController(64)
        follower = next(
            s
            for s in range(64)
            if not controller.is_primary_leader(s)
            and not controller.is_secondary_leader(s)
        )
        before = controller.psel
        for _ in range(50):
            controller.record_miss(follower)
        assert controller.psel == before

    def test_saturation(self):
        controller = DuelController(64, psel_bits=4)
        leader = next(s for s in range(64) if controller.is_primary_leader(s))
        for _ in range(1000):
            controller.record_miss(leader)
        assert controller.psel == controller.psel_max

    def test_reset(self):
        controller = DuelController(64)
        leader = next(s for s in range(64) if controller.is_primary_leader(s))
        controller.record_miss(leader)
        controller.reset()
        assert controller.psel == controller.psel_mid

    def test_single_set_cache(self):
        # Degenerate but allowed: one set; must not crash.
        controller = DuelController(1)
        controller.record_miss(0)
        controller.use_primary(0)
