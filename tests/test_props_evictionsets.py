"""Property-based tests for eviction-set discovery.

Random hashed geometries, random pools, random victims: the discovered
set must always have the target size and consist purely of true same-set
partners of the victim.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache import AddressCodec, CacheConfig
from repro.core.evictionsets import find_eviction_set
from repro.errors import MeasurementError
from tests.test_core_evictionsets import _FakeTester


@st.composite
def geometries(draw):
    ways = draw(st.sampled_from([2, 4, 8]))
    sets = draw(st.sampled_from([8, 16, 32]))
    index_hash = draw(st.sampled_from(["bits", "xor-fold"]))
    return CacheConfig("LLC", sets * ways * 64, ways, index_hash=index_hash)


@given(
    config=geometries(),
    victim_line=st.integers(min_value=0, max_value=1 << 16),
    pool_seed=st.integers(min_value=0, max_value=1 << 16),
)
@settings(max_examples=40, deadline=None)
def test_discovered_set_is_exact(config, victim_line, pool_seed):
    codec = AddressCodec(config)
    tester = _FakeTester(codec, ways=config.ways)
    pool = [(pool_seed + line) * 64 for line in range(8 * config.ways * config.num_sets)]
    victim = (1 << 21) + victim_line * 64
    assume(victim not in pool)
    found = find_eviction_set(tester, victim, pool, target_size=config.ways)
    assert len(found) == config.ways
    victim_set = codec.decompose(victim).set_index
    assert all(codec.decompose(a).set_index == victim_set for a in found)


@given(config=geometries())
@settings(max_examples=20, deadline=None)
def test_insufficient_pool_raises(config):
    codec = AddressCodec(config)
    tester = _FakeTester(codec, ways=config.ways)
    victim = 1 << 21
    # Fewer than `ways` partners can exist in a tiny pool.
    pool = [line * 64 for line in range(config.ways - 1)]
    try:
        find_eviction_set(tester, victim, pool, target_size=config.ways)
    except MeasurementError:
        return
    raise AssertionError("expected MeasurementError for an undersized pool")
