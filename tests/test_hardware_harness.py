"""Tests for the measurement harness and hardware oracle."""

import pytest

from repro.cache import CacheConfig
from repro.core import PermutationInference, reverse_engineer
from repro.errors import MeasurementError
from repro.hardware import (
    HardwarePlatform,
    HardwareSetOracle,
    LevelSpec,
    MeasurementHarness,
    ProcessorSpec,
)


def two_level_processor(l1_policy="lru", l2_policy="fifo", page_size=2 * 1024 * 1024):
    return ProcessorSpec(
        name="test2l",
        description="test-only",
        levels=(
            LevelSpec(CacheConfig("L1", 4 * 1024, 4), l1_policy),  # 16 sets
            LevelSpec(CacheConfig("L2", 32 * 1024, 8), l2_policy),  # 64 sets
        ),
        page_size=page_size,
    )


class TestHarnessAddressing:
    def test_find_set_addresses_map_correctly(self):
        platform = HardwarePlatform(two_level_processor())
        harness = MeasurementHarness(platform, buffer_size=1 << 20)
        addresses = harness.find_set_addresses("L2", 17, 12)
        assert len(set(addresses)) == 12
        assert all(harness.set_index_of("L2", a) == 17 for a in addresses)

    def test_find_set_addresses_with_small_pages(self):
        platform = HardwarePlatform(two_level_processor(page_size=4096))
        harness = MeasurementHarness(platform, buffer_size=1 << 20)
        addresses = harness.find_set_addresses("L2", 5, 8)
        assert all(harness.set_index_of("L2", a) == 5 for a in addresses)

    def test_buffer_too_small_detected(self):
        platform = HardwarePlatform(two_level_processor())
        harness = MeasurementHarness(platform, buffer_size=1 << 14)
        with pytest.raises(MeasurementError):
            harness.find_set_addresses("L2", 0, 1000)

    def test_conflict_pool_properties(self):
        platform = HardwarePlatform(two_level_processor())
        harness = MeasurementHarness(platform, buffer_size=1 << 22)
        target = harness.find_set_addresses("L2", 9, 1)[0]
        pool = harness.conflict_pool("L2", target)
        assert len(pool) == 2 * 4  # twice the L1 associativity
        l1_set = harness.set_index_of("L1", target)
        for address in pool:
            assert harness.set_index_of("L1", address) == l1_set
            assert harness.set_index_of("L2", address) != 9

    def test_conflict_pool_empty_for_l1(self):
        platform = HardwarePlatform(two_level_processor())
        harness = MeasurementHarness(platform, buffer_size=1 << 20)
        target = harness.find_set_addresses("L1", 3, 1)[0]
        assert harness.conflict_pool("L1", target) == []


class TestHardwareOracle:
    def test_l1_miss_counts(self):
        platform = HardwarePlatform(two_level_processor())
        oracle = HardwareSetOracle(platform, "L1", max_blocks=32)
        assert oracle.count_misses([], [0, 1, 0]) == 2
        assert oracle.count_misses([0], [0]) == 0

    def test_l2_logical_accesses_reach_l2(self):
        platform = HardwarePlatform(two_level_processor())
        oracle = HardwareSetOracle(platform, "L2", max_blocks=32)
        # Two accesses to the same block: the second must HIT L2, which
        # can only happen if the first L1 copy was defeated in between.
        assert oracle.count_misses([], [0, 0]) == 1

    def test_measurements_independent(self):
        platform = HardwarePlatform(two_level_processor())
        oracle = HardwareSetOracle(platform, "L2", max_blocks=32)
        first = oracle.count_misses([], [0, 1, 2, 0])
        second = oracle.count_misses([], [0, 1, 2, 0])
        assert first == second

    def test_pool_exhaustion_detected(self):
        platform = HardwarePlatform(two_level_processor())
        oracle = HardwareSetOracle(platform, "L1", max_blocks=4)
        with pytest.raises(MeasurementError):
            oracle.count_misses([], list(range(100)))

    def test_end_to_end_l1_inference(self):
        platform = HardwarePlatform(two_level_processor())
        oracle = HardwareSetOracle(platform, "L1", max_blocks=64)
        result = PermutationInference(oracle).infer()
        assert result.succeeded
        from repro.core import name_spec

        assert name_spec(result.spec) == "lru"

    def test_end_to_end_l2_inference(self):
        platform = HardwarePlatform(two_level_processor())
        oracle = HardwareSetOracle(platform, "L2", max_blocks=64)
        finding = reverse_engineer(oracle)
        assert finding.policy_name == "fifo"

    def test_inference_with_small_pages(self):
        platform = HardwarePlatform(two_level_processor(page_size=4096))
        oracle = HardwareSetOracle(platform, "L1", max_blocks=64)
        finding = reverse_engineer(oracle)
        assert finding.policy_name == "lru"


class TestHarnessValidation:
    def test_monotone_set_counts_required(self):
        spec = ProcessorSpec(
            name="shrinking",
            description="L2 smaller than L1 in sets",
            levels=(
                LevelSpec(CacheConfig("L1", 32 * 1024, 8), "lru"),  # 64 sets
                LevelSpec(CacheConfig("L2", 32 * 1024, 32), "lru"),  # 16 sets
            ),
        )
        platform = HardwarePlatform(spec)
        with pytest.raises(MeasurementError, match="monotonic"):
            MeasurementHarness(platform, buffer_size=1 << 20)
