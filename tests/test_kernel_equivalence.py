"""Property-based kernel/interpreter equivalence suite.

The compiled kernel's whole claim is *bit-identity*: whatever the
interpreted :class:`~repro.cache.set.CacheSet` / :class:`~repro.cache.Cache`
would produce — per-access hit/miss, filled way, eviction order, whole
cache statistics — the table-driven engine must produce too, for every
deterministic policy in the registry and for arbitrary permutation
specs.  Hypothesis supplies the traces and the specs; the interpreter is
the reference implementation in every assertion.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig
from repro.cache.set import CacheSet
from repro.core import PermutationInference, SimulatedSetOracle
from repro.core.permutation import standard_miss_perm
from repro.kernels import (
    clear_compile_cache,
    compile_policy,
    count_misses_kernel,
    kernel_disabled,
    simulate_sequence,
    simulate_trace_direct,
    try_simulate_trace,
)
from repro.policies import PermutationPolicy, PermutationSpec, available, make_policy
from repro.util.rng import SeededRng
from repro.workloads.trace import Trace
from tests.conftest import RANDOMIZED, all_deterministic_policies

WAYS = 4

policy_names = st.sampled_from([name for name, _ in all_deterministic_policies(WAYS)])
block_sequences = st.lists(
    st.integers(min_value=0, max_value=11), min_size=1, max_size=120
)


@st.composite
def random_specs(draw, ways=WAYS):
    """Random standard-miss specs (the class inference targets)."""
    hits = tuple(
        tuple(draw(st.permutations(list(range(ways))))) for _ in range(ways)
    )
    return PermutationSpec(ways, hits, standard_miss_perm(ways))


def build(name, ways=WAYS):
    if name == "permutation":
        from repro.policies import lru_spec

        return make_policy(name, ways, spec=lru_spec(ways))
    return make_policy(name, ways)


@given(name=policy_names, blocks=block_sequences)
@settings(max_examples=150, deadline=None)
def test_registry_policies_bit_identical(name, blocks):
    """Every deterministic policy: full per-access detail matches."""
    compiled = compile_policy(build(name))
    cache_set = CacheSet(WAYS, build(name))
    assert simulate_sequence(compiled, blocks) == [
        cache_set.access(block) for block in blocks
    ]


@given(spec=random_specs(), blocks=block_sequences)
@settings(max_examples=100, deadline=None)
def test_random_specs_bit_identical(spec, blocks):
    """Arbitrary permutation specs: full per-access detail matches."""
    compiled = compile_policy(spec)
    cache_set = CacheSet(WAYS, PermutationPolicy(WAYS, spec))
    assert simulate_sequence(compiled, blocks) == [
        cache_set.access(block) for block in blocks
    ]


@given(
    name=policy_names,
    setup=st.lists(st.integers(min_value=0, max_value=11), max_size=30),
    probe=block_sequences,
)
@settings(max_examples=100, deadline=None)
def test_miss_counts_match_oracle(name, setup, probe):
    """Kernel miss counts equal the interpreted oracle's."""
    compiled = compile_policy(build(name))
    with kernel_disabled():
        oracle = SimulatedSetOracle(build(name))
        assert count_misses_kernel(compiled, setup, probe) == oracle.count_misses(
            setup, probe
        )


def _random_trace(lines: int, length: int, seed: int) -> Trace:
    rng = SeededRng(seed).fork("trace")
    return Trace(
        f"rand-{seed}",
        tuple(rng.randrange(lines) * 64 for _ in range(length)),
    )


@pytest.mark.parametrize("name", sorted(available()))
@pytest.mark.parametrize("index_hash", ["bits", "xor-fold"])
def test_whole_cache_stats_bit_identical(name, index_hash):
    """try_simulate_trace == interpreted Cache for every registry policy.

    Covers both index hashes and both kernel modes: compiled automata
    for deterministic policies, direct mode for the randomized and
    set-dueling ones (same rng construction order, so identical draws).
    """
    from repro.policies import PolicyFactory, lru_spec

    config = CacheConfig("t", 4 * 1024, 4, index_hash=index_hash)  # 16 sets
    kwargs = {"spec": lru_spec(4)} if name == "permutation" else {}
    factory = PolicyFactory(name, **kwargs)
    trace = _random_trace(lines=200, length=4000, seed=11)

    stats = try_simulate_trace(trace, config, factory, seed=5)
    assert stats is not None

    cache = Cache(config, factory, rng=SeededRng(5))
    for address in trace:
        cache.access(address)
    assert stats == cache.stats


@pytest.mark.parametrize("name", sorted(RANDOMIZED))
def test_direct_mode_seed_sensitivity(name):
    """Direct mode threads the seed exactly like the interpreter does."""
    config = CacheConfig("t", 2 * 1024, 4)
    trace = _random_trace(lines=150, length=3000, seed=2)
    for seed in (0, 9):
        direct = simulate_trace_direct(trace, config, name, seed=seed)
        cache = Cache(config, name, rng=SeededRng(seed))
        for address in trace:
            cache.access(address)
        assert direct == cache.stats


@given(spec=random_specs())
@settings(max_examples=10, deadline=None)
def test_inference_identical_with_and_without_kernel(spec):
    """The end-to-end inference result does not depend on the path taken."""
    clear_compile_cache()
    fast = PermutationInference(SimulatedSetOracle(PermutationPolicy(WAYS, spec))).infer()
    with kernel_disabled():
        slow = PermutationInference(
            SimulatedSetOracle(PermutationPolicy(WAYS, spec))
        ).infer()
    assert fast.succeeded == slow.succeeded
    assert fast.spec == slow.spec
    assert fast.measurements == slow.measurements
    assert fast.accesses == slow.accesses
