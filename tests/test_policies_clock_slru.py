"""Tests for the CLOCK and SLRU policies."""

import pytest

from repro.cache.set import CacheSet
from repro.errors import ConfigurationError
from repro.policies import ClockPolicy, LruPolicy, SlruPolicy


class TestClock:
    def test_sweep_clears_and_finds_zero(self):
        policy = ClockPolicy(4)
        for way in range(4):
            policy.touch(way)
        # All referenced: the sweep clears 0..3 and circles back to 0.
        assert policy.evict() == 0
        assert policy.state_key() == ((0, 0, 0, 0), 0)

    def test_second_chance(self):
        policy = ClockPolicy(2)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)  # way 0, referenced, hand moves to 1
        cache_set.access(2)  # way 1, referenced, hand moves to 0
        cache_set.access(1)  # re-reference way 0
        # Victim search: way 0 referenced -> cleared, way 1 referenced ->
        # cleared, back to way 0 (now clear) -> victim is way 0 anyway?
        # No: hand starts at 0; after clearing both, first zero is way 0.
        result = cache_set.access(3)
        assert result.evicted_tag in (1, 2)

    def test_hand_position_matters(self):
        # Two states with equal reference bits but different hands pick
        # different victims: the property that separates CLOCK from NRU.
        first = ClockPolicy(4)
        second = ClockPolicy(4)
        second._hand = 2
        assert first.evict() != second.evict()

    def test_clone_and_reset(self):
        policy = ClockPolicy(4)
        policy.touch(1)
        policy.fill(0)
        copy = policy.clone()
        assert copy.state_key() == policy.state_key()
        policy.reset()
        assert policy.state_key() == ((0, 0, 0, 0), 0)

    def test_long_random_run_invariants(self):
        import random

        rng = random.Random(0)
        cache_set = CacheSet(4, ClockPolicy(4))
        for _ in range(2000):
            cache_set.access(rng.randrange(7))
            contents = [t for t in cache_set.contents() if t is not None]
            assert len(contents) == len(set(contents))


class TestSlru:
    def test_protected_ways_validation(self):
        with pytest.raises(ConfigurationError):
            SlruPolicy(4, protected_ways=4)
        with pytest.raises(ConfigurationError):
            SlruPolicy(4, protected_ways=-1)

    def test_new_blocks_enter_probationary(self):
        policy = SlruPolicy(4, protected_ways=2)
        cache_set = CacheSet(4, policy)
        for tag in (1, 2, 3, 4):
            cache_set.access(tag)
        assert policy._protected == []
        assert len(policy._probationary) == 4

    def test_hit_promotes_to_protected(self):
        policy = SlruPolicy(4, protected_ways=2)
        cache_set = CacheSet(4, policy)
        for tag in (1, 2, 3, 4):
            cache_set.access(tag)
        cache_set.access(2)
        way_of_2 = cache_set.lookup(2)
        assert policy._protected == [way_of_2]

    def test_protected_overflow_demotes(self):
        policy = SlruPolicy(4, protected_ways=1)
        cache_set = CacheSet(4, policy)
        for tag in (1, 2, 3, 4):
            cache_set.access(tag)
        cache_set.access(1)
        cache_set.access(2)  # 1 demoted back to probationary MRU
        assert len(policy._protected) == 1
        assert policy._protected[0] == cache_set.lookup(2)

    def test_scan_resistance(self):
        # A reused block survives a scan that fills the probationary
        # segment, where plain LRU loses it.
        reuse_then_scan = [1, 1, 10, 11, 12, 13, 1]
        slru_set = CacheSet(4, SlruPolicy(4, protected_ways=2))
        lru_set = CacheSet(4, LruPolicy(4))
        slru_hits = [slru_set.access(t).hit for t in reuse_then_scan]
        lru_hits = [lru_set.access(t).hit for t in reuse_then_scan]
        assert slru_hits[-1] is True
        assert lru_hits[-1] is False

    def test_victim_prefers_probationary(self):
        policy = SlruPolicy(2, protected_ways=1)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)
        cache_set.access(2)
        cache_set.access(1)  # 1 promoted to protected
        result = cache_set.access(3)
        assert result.evicted_tag == 2  # probationary LRU, not protected 1

    def test_protected_evicted_when_probationary_empty(self):
        policy = SlruPolicy(2, protected_ways=1)
        cache_set = CacheSet(2, policy)
        cache_set.access(1)
        cache_set.access(2)
        cache_set.access(1)
        cache_set.access(2)
        # Both promoted in turn; protected holds 2, probationary holds 1
        # (demoted).  Fill pattern keeps the partition consistent.
        total = len(policy._probationary) + len(policy._protected)
        assert total == 2

    def test_clone_independent(self):
        policy = SlruPolicy(4)
        policy.touch(1)
        copy = policy.clone()
        policy.touch(2)
        assert copy.state_key() != policy.state_key()

    def test_partition_invariant_under_random_traffic(self):
        import random

        rng = random.Random(1)
        policy = SlruPolicy(4, protected_ways=2)
        cache_set = CacheSet(4, policy)
        for _ in range(3000):
            cache_set.access(rng.randrange(8))
            ways = sorted(policy._probationary + policy._protected)
            assert ways == [0, 1, 2, 3]
            assert len(policy._protected) <= 2
