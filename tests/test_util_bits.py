"""Tests for repro.util.bits."""

import pytest

from repro.util.bits import extract_bits, ilog2, is_power_of_two, mask


class TestIsPowerOfTwo:
    def test_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)


class TestIlog2:
    def test_round_trip(self):
        for exponent in range(32):
            assert ilog2(1 << exponent) == exponent

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)


class TestMask:
    def test_values(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(3) == 0b111
        assert mask(8) == 0xFF

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestExtractBits:
    def test_basic(self):
        assert extract_bits(0b1011_0100, 2, 4) == 0b1101
        assert extract_bits(0xFF00, 8, 8) == 0xFF
        assert extract_bits(0xFF00, 0, 8) == 0

    def test_zero_width(self):
        assert extract_bits(0xABCD, 4, 0) == 0

    def test_rejects_negative_positions(self):
        with pytest.raises(ValueError):
            extract_bits(1, -1, 2)
        with pytest.raises(ValueError):
            extract_bits(1, 0, -2)
