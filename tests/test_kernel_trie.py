"""Prefix-trie query planner tests.

Four concerns, mirroring the contract in :mod:`repro.kernels.trie`:

* **Equivalence** — both planner engines (scalar replay and vectorized
  level frontiers) are bit-identical to the batched engines for miss
  counts and outcome lists, over random batches and the awkward shapes:
  empty setups/probes, duplicate queries, single-query batches, and the
  no-numpy fallback leg.
* **Counters** — a planned batch still satisfies ``kernel.accesses ==
  kernel.hits + kernel.misses``, and the relaxed parity contract holds:
  ``kernel.accesses + kernel.trie.reused_accesses`` equals the accesses
  a per-query run would have executed.  ``kernel.trie.plans`` / ``nodes``
  / ``vector_plans`` / ``fallbacks`` record engagement.
* **Gates** — small batches are silently declined, low-sharing batches
  are declined *and counted* as fallbacks, and the process-wide switch
  (``set_trie_enabled`` / ``trie_disabled`` / CLI ``--no-trie``) forces
  the batched engines.
* **Integration** — ``SimulatedSetOracle.query`` dedups without
  perturbing ``oracle.*`` accounting, and a full inference run produces
  an identical :class:`InferenceResult` with the planner on or off.
"""

from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InferenceConfig, PermutationInference, SimulatedSetOracle
from repro.kernels import (
    clear_compile_cache,
    compile_policy,
    count_misses_batch,
    count_misses_kernel,
    sequence_hits,
    sequence_hits_batch,
    set_trie_enabled,
    trie,
    trie_allowed,
    trie_disabled,
    trie_enabled,
    vector,
    vector_disabled,
)
from repro.obs import metrics as obs_metrics
from repro.policies import LruPolicy, PlruPolicy, make_policy
from tests.conftest import all_deterministic_policies

WAYS = 4

numpy_only = pytest.mark.skipif(
    not vector.available(), reason="numpy not installed"
)

#: Engines the planner can execute a trie with.  The "vector" leg only
#: exists when numpy is importable; the scalar replay always does.
ENGINES = ["scalar"] + (["vector"] if vector.available() else [])

#: A batch the default gates accept: 9 queries (>= MIN_QUERIES) whose
#: duplicates collapse to 3 distinct sequences, sharing ratio ~3.6.
SHARED_QUERIES = (
    [(list(range(WAYS)), [5, 0, 6, 1])] * 5
    + [([7, 8], [7, 9, 8])] * 3
    + [([], [1, 1, 2])]
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_compile_cache()
    yield
    clear_compile_cache()


@contextmanager
def planner_forced(engine):
    """Open every gate and pin the planner onto one execution engine."""
    saved = (
        trie.MIN_QUERIES,
        trie.MIN_SHARE_RATIO,
        trie.MIN_VECTOR_NODES,
        trie.MIN_AVG_FRONTIER,
    )
    trie.MIN_QUERIES = 1
    trie.MIN_SHARE_RATIO = 0.0
    if engine == "vector":
        trie.MIN_VECTOR_NODES = 0
        trie.MIN_AVG_FRONTIER = 0
    else:
        trie.MIN_VECTOR_NODES = 1 << 60
    try:
        yield
    finally:
        (
            trie.MIN_QUERIES,
            trie.MIN_SHARE_RATIO,
            trie.MIN_VECTOR_NODES,
            trie.MIN_AVG_FRONTIER,
        ) = saved


policy_names = st.sampled_from([name for name, _ in all_deterministic_policies(WAYS)])
# A small block alphabet makes shared prefixes (and duplicate queries)
# common, so sorted-LCP sharing is actually exercised.
blocks = st.lists(st.integers(min_value=0, max_value=7), max_size=24)
query_lists = st.lists(st.tuples(blocks, blocks), min_size=1, max_size=23)


def build(name, ways=WAYS):
    if name == "permutation":
        from repro.policies import lru_spec

        return make_policy(name, ways, spec=lru_spec(ways))
    return make_policy(name, ways)


# -- equivalence -------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
@given(name=policy_names, queries=query_lists)
@settings(max_examples=60, deadline=None)
def test_planner_counts_bit_identical(engine, name, queries):
    """Planned miss counts == batched-engine miss counts, any engine."""
    compiled = compile_policy(build(name))
    with trie_disabled():
        expected = count_misses_batch(compiled, queries)
    with planner_forced(engine):
        assert count_misses_batch(compiled, queries) == expected


@pytest.mark.parametrize("engine", ENGINES)
@given(name=policy_names, queries=query_lists)
@settings(max_examples=60, deadline=None)
def test_planner_outcomes_bit_identical(engine, name, queries):
    """Planned hit/miss outcome lists == batched-engine outcomes."""
    compiled = compile_policy(build(name))
    with trie_disabled():
        expected = sequence_hits_batch(compiled, queries)
    with planner_forced(engine):
        assert sequence_hits_batch(compiled, queries) == expected


@pytest.mark.parametrize("engine", ENGINES)
def test_planner_edge_shapes(engine):
    """Empty setups/probes, duplicates, single-query batches."""
    compiled = compile_policy(LruPolicy(WAYS))
    cases = [
        [([], [])],                              # single, fully empty
        [([], []), ([], [])],                    # all-empty batch
        [([], [1, 2, 1])],                       # single-query batch
        [([1, 2], [])],                          # empty probe
        [([1, 2], [3, 1])] * 7,                  # pure duplicates
        [([], []), ([], []), ([1], [1])],        # empties then content
        [([1, 2, 3], [4]), ([1, 2], [3, 4]), ([1], [2, 3, 4])],  # nested
        [([i], [i, i + 1]) for i in range(17)],  # no sharing at all
    ]
    for queries in cases:
        expected = [
            sequence_hits(compiled, setup, probe) for setup, probe in queries
        ]
        with planner_forced(engine):
            assert sequence_hits_batch(compiled, queries) == expected
            counts = count_misses_batch(compiled, queries)
        assert counts == [len(h) - sum(h) for h in expected]


@numpy_only
def test_planner_engines_agree_on_huge_ids():
    """Block ids beyond int64 push the layout (and plan) to the scalar
    replay via the Python LCP path — same results."""
    compiled = compile_policy(LruPolicy(WAYS))
    big = 1 << 70
    queries = [([big], [big, 1])] * 5 + [([big], [big, 2])] * 4
    expected = [sequence_hits(compiled, s, p) for s, p in queries]
    assert sequence_hits_batch(compiled, queries) == expected


# -- counters ----------------------------------------------------------------

def test_planner_counter_reconciliation():
    """Relaxed parity: executed + reused == per-query accesses."""
    compiled = compile_policy(LruPolicy(WAYS))
    total = sum(len(s) + len(p) for s, p in SHARED_QUERIES)
    obs_metrics.DEFAULT.reset()
    counts = count_misses_batch(compiled, SHARED_QUERIES)
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert counters["kernel.trie.plans"] == 1
    assert counters["kernel.trie.nodes"] == counters["kernel.accesses"]
    assert counters["kernel.accesses"] < total  # sharing actually reused work
    assert counters["kernel.accesses"] + counters["kernel.trie.reused_accesses"] == total
    assert counters["kernel.accesses"] == counters["kernel.hits"] + counters["kernel.misses"]
    assert "kernel.trie.fallbacks" not in counters

    # The per-query scalar reference executes every single access.
    obs_metrics.DEFAULT.reset()
    with trie_disabled(), vector_disabled():
        expected = [
            count_misses_kernel(compiled, setup, probe)
            for setup, probe in SHARED_QUERIES
        ]
    reference = obs_metrics.DEFAULT.snapshot()["counters"]
    assert reference["kernel.accesses"] == total
    assert counts == expected


@numpy_only
def test_planner_engines_report_identical_accounting():
    """Scalar replay and vector frontiers agree on every kernel counter."""
    compiled = compile_policy(PlruPolicy(WAYS))
    snapshots = {}
    for engine in ("scalar", "vector"):
        obs_metrics.DEFAULT.reset()
        with planner_forced(engine):
            counts = count_misses_batch(compiled, SHARED_QUERIES)
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        snapshots[engine] = (counts, {
            key: counters[key]
            for key in (
                "kernel.accesses",
                "kernel.hits",
                "kernel.misses",
                "kernel.trie.plans",
                "kernel.trie.nodes",
                "kernel.trie.reused_accesses",
            )
        })
        if engine == "vector":
            assert counters["kernel.trie.vector_plans"] == 1
        else:
            assert "kernel.trie.vector_plans" not in counters
    assert snapshots["scalar"] == snapshots["vector"]


def test_small_batches_silently_decline():
    """Below MIN_QUERIES the planner refuses without a fallback count."""
    compiled = compile_policy(LruPolicy(WAYS))
    queries = SHARED_QUERIES[: trie.MIN_QUERIES - 1]
    obs_metrics.DEFAULT.reset()
    assert trie.plan_miss_counts(compiled, queries) is None
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert "kernel.trie.plans" not in counters
    assert "kernel.trie.fallbacks" not in counters


def test_low_sharing_batches_count_a_fallback(monkeypatch):
    """A shareless batch is declined and recorded as kernel.trie.fallbacks."""
    compiled = compile_policy(LruPolicy(WAYS))
    monkeypatch.setattr(trie, "MIN_QUERIES", 1)
    queries = [([], [i]) for i in range(8)]  # ratio exactly 1.0 < 1.2
    obs_metrics.DEFAULT.reset()
    assert trie.plan_miss_counts(compiled, queries) is None
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert counters["kernel.trie.fallbacks"] == 1
    assert "kernel.trie.plans" not in counters
    # The batched engines still answer the batch, bit-identically.
    assert count_misses_batch(compiled, queries) == [
        count_misses_kernel(compiled, setup, probe) for setup, probe in queries
    ]


def test_all_empty_batch_is_not_planned():
    compiled = compile_policy(LruPolicy(WAYS))
    obs_metrics.DEFAULT.reset()
    assert trie.plan_miss_counts(compiled, [([], [])] * 9) is None
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert "kernel.trie.fallbacks" not in counters


# -- no-numpy fallback -------------------------------------------------------

class TestNoNumpyPlanner:
    """With numpy gone the scalar replay is still a full planner."""

    @pytest.fixture(autouse=True)
    def _without_numpy(self, monkeypatch):
        monkeypatch.setattr(trie, "_np", None)
        monkeypatch.setattr(vector, "_np", None)

    def test_planner_still_engages_and_matches(self):
        compiled = compile_policy(LruPolicy(WAYS))
        assert trie_allowed()  # no numpy requirement, unlike the vector engine
        obs_metrics.DEFAULT.reset()
        planned = count_misses_batch(compiled, SHARED_QUERIES)
        counters = obs_metrics.DEFAULT.snapshot()["counters"]
        assert counters["kernel.trie.plans"] == 1
        assert "kernel.trie.vector_plans" not in counters
        with trie_disabled():
            assert planned == count_misses_batch(compiled, SHARED_QUERIES)

    def test_outcomes_match(self):
        compiled = compile_policy(PlruPolicy(WAYS))
        expected = [
            sequence_hits(compiled, setup, probe)
            for setup, probe in SHARED_QUERIES
        ]
        assert sequence_hits_batch(compiled, SHARED_QUERIES) == expected


# -- switches ----------------------------------------------------------------

def test_trie_enable_disable_switch():
    assert trie_enabled()
    set_trie_enabled(False)
    try:
        assert not trie_enabled()
        assert not trie_allowed()
    finally:
        set_trie_enabled(True)
    with trie_disabled():
        assert not trie_enabled()
        compiled = compile_policy(LruPolicy(WAYS))
        assert trie.plan_miss_counts(compiled, SHARED_QUERIES) is None
    assert trie_enabled()


def test_cli_trie_flag_parses():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["evaluate", "--policies", "lru"])
    assert args.trie is True
    args = parser.parse_args(["evaluate", "--policies", "lru", "--no-trie"])
    assert args.trie is False


# -- integration -------------------------------------------------------------

def test_oracle_query_dedup_preserves_accounting():
    """Duplicate requests are measured once by the kernel, yet oracle.*
    counters (and the oracle's own cost fields) stay per-request."""
    requests = [([1, 2], [1, 3])] * 6 + [([], [4])] * 3
    oracle = SimulatedSetOracle(LruPolicy(WAYS))
    obs_metrics.DEFAULT.reset()
    counts = oracle.query(requests)
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert counters["oracle.measurements"] == len(requests)
    assert counters["oracle.accesses"] == sum(
        len(setup) + len(probe) for setup, probe in requests
    )
    assert oracle.measurements == len(requests)
    assert counts == [oracle.count_misses(setup, probe) for setup, probe in requests]


def test_inference_result_invariant_under_planner():
    """The planner changes cost, never answers: bit-identical results.

    The policy is registry-built so the oracle has a provenance (it is
    deterministic), which is what lets ``_verify`` batch its windows
    through ``oracle.query`` and reach the planner.
    """
    def run():
        oracle = SimulatedSetOracle(make_policy("plru", 8))
        config = InferenceConfig(verify_sequences=10)
        return PermutationInference(oracle, config=config).infer()

    obs_metrics.DEFAULT.reset()
    with_planner = run()
    counters = obs_metrics.DEFAULT.snapshot()["counters"]
    assert counters.get("kernel.trie.plans", 0) >= 1
    with trie_disabled():
        without_planner = run()
    assert with_planner == without_planner
    assert with_planner.succeeded
