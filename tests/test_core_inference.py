"""Tests for measurement-based permutation inference."""

import pytest

from repro.core import (
    InferenceConfig,
    PermutationInference,
    SimulatedSetOracle,
    VotingOracle,
    equivalent,
)
from repro.core.permutation import derive_spec_from_policy
from repro.errors import InferenceError
from repro.policies import (
    BitPlruPolicy,
    FifoPolicy,
    LruPolicy,
    PermutationPolicy,
    PlruPolicy,
    RandomPolicy,
    lru_spec,
    make_policy,
)


class TestAssociativityInference:
    @pytest.mark.parametrize("ways", [1, 2, 3, 4, 6, 8, 16])
    def test_lru(self, ways):
        oracle = SimulatedSetOracle(LruPolicy(ways), expose_ways=False)
        assert PermutationInference(oracle).infer_associativity() == ways

    @pytest.mark.parametrize("policy_name", ["fifo", "plru", "bitplru", "srrip"])
    def test_other_policies(self, policy_name):
        oracle = SimulatedSetOracle(make_policy(policy_name, 8), expose_ways=False)
        assert PermutationInference(oracle).infer_associativity() == 8


class TestInferencePositive:
    @pytest.mark.parametrize("ways", [2, 3, 4, 8])
    def test_lru_recovered(self, ways):
        oracle = SimulatedSetOracle(LruPolicy(ways))
        result = PermutationInference(oracle).infer()
        assert result.succeeded
        assert equivalent(result.spec, lru_spec(ways))

    @pytest.mark.parametrize("ways", [2, 4, 8])
    def test_fifo_recovered(self, ways):
        oracle = SimulatedSetOracle(FifoPolicy(ways))
        result = PermutationInference(oracle).infer()
        assert result.succeeded
        identity = tuple(range(ways))
        assert all(perm == identity for perm in result.spec.hit_perms)

    @pytest.mark.parametrize("ways", [4, 8])
    def test_plru_recovered(self, ways):
        oracle = SimulatedSetOracle(PlruPolicy(ways))
        result = PermutationInference(oracle).infer()
        assert result.succeeded
        truth = derive_spec_from_policy(PlruPolicy(ways))
        assert equivalent(result.spec, truth)

    def test_synthetic_permutation_round_trip(self):
        # Take LRU, conjugate it into an unfamiliar representation, run
        # it as a black box, and check inference recovers an equivalent.
        spec = lru_spec(4).conjugate((2, 0, 1, 3))
        oracle = SimulatedSetOracle(PermutationPolicy(4, spec))
        result = PermutationInference(oracle).infer()
        assert result.succeeded
        assert equivalent(result.spec, spec)


class TestInferenceNegative:
    def test_bitplru_rejected_with_reason(self):
        oracle = SimulatedSetOracle(BitPlruPolicy(4))
        result = PermutationInference(oracle).infer()
        assert not result.succeeded
        assert result.spec is None
        assert result.failure_reason

    def test_qlru_rejected_by_verification(self):
        oracle = SimulatedSetOracle(make_policy("qlru_h00_m1", 4))
        result = PermutationInference(oracle).infer()
        assert not result.succeeded

    def test_random_policy_rejected(self):
        oracle = SimulatedSetOracle(RandomPolicy(4))
        result = PermutationInference(oracle).infer()
        assert not result.succeeded


class TestStrategies:
    def test_binary_matches_linear(self):
        linear = PermutationInference(
            SimulatedSetOracle(PlruPolicy(8)), config=InferenceConfig(strategy="linear")
        ).infer()
        binary = PermutationInference(
            SimulatedSetOracle(PlruPolicy(8)), config=InferenceConfig(strategy="binary")
        ).infer()
        assert linear.succeeded and binary.succeeded
        assert equivalent(linear.spec, binary.spec)

    def test_binary_uses_fewer_measurements(self):
        results = {}
        for strategy in ("linear", "binary"):
            oracle = SimulatedSetOracle(LruPolicy(16))
            results[strategy] = PermutationInference(
                oracle, config=InferenceConfig(strategy=strategy)
            ).infer()
        assert results["binary"].measurements < results["linear"].measurements

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InferenceError):
            InferenceConfig(strategy="psychic")


class TestCostAccounting:
    def test_measurement_counts_reported(self):
        oracle = SimulatedSetOracle(LruPolicy(4))
        result = PermutationInference(oracle).infer()
        assert result.measurements > 0
        assert result.accesses > result.measurements

    def test_position_tables_exposed(self):
        oracle = SimulatedSetOracle(LruPolicy(4))
        result = PermutationInference(oracle).infer()
        assert len(result.position_tables) == 4
        for table in result.position_tables:
            assert sorted(table) == [0, 1, 2, 3]


class TestVotingIntegration:
    def test_inference_through_voting_oracle(self):
        oracle = VotingOracle(SimulatedSetOracle(PlruPolicy(4)), repetitions=3)
        result = PermutationInference(oracle).infer()
        assert result.succeeded
