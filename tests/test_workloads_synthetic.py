"""Tests for the synthetic application models."""

from repro.workloads import APP_MODELS, workload_suite


class TestAppModels:
    def test_catalog_names(self):
        for expected in ("streaming", "loop-friendly", "loop-thrashing",
                         "pointer-chasing", "skewed", "hot-cold",
                         "scan-interference", "random-noise"):
            assert expected in APP_MODELS

    def test_traces_carry_model_name(self):
        for name, model in APP_MODELS.items():
            trace = model.trace(cache_lines=64, seed=0)
            assert trace.name == name
            assert len(trace) > 0

    def test_deterministic_by_seed(self):
        model = APP_MODELS["skewed"]
        assert model.trace(64, seed=1) == model.trace(64, seed=1)

    def test_footprints_scale_with_cache(self):
        small = APP_MODELS["streaming"].trace(cache_lines=32)
        large = APP_MODELS["streaming"].trace(cache_lines=128)
        assert large.footprint_lines > small.footprint_lines

    def test_loop_friendly_fits_loop_thrashing_does_not(self):
        cache_lines = 64
        friendly = APP_MODELS["loop-friendly"].trace(cache_lines)
        thrashing = APP_MODELS["loop-thrashing"].trace(cache_lines)
        assert friendly.footprint_lines <= cache_lines
        assert thrashing.footprint_lines > cache_lines


class TestSuite:
    def test_suite_instantiates_all(self):
        suite = workload_suite(64)
        assert len(suite) == len(APP_MODELS)
        assert {trace.name for trace in suite} == set(APP_MODELS)
