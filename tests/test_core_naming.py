"""Tests for spec naming."""

from repro.core.naming import known_specs, name_spec
from repro.core.permutation import derive_spec_from_policy
from repro.policies import PlruPolicy, fifo_spec, lru_spec


class TestKnownSpecs:
    def test_power_of_two_includes_plru(self):
        table = known_specs(4)
        assert set(table) == {"lru", "fifo", "plru"}

    def test_non_power_of_two_excludes_plru(self):
        table = known_specs(6)
        assert set(table) == {"lru", "fifo"}

    def test_cached(self):
        assert known_specs(4) is known_specs(4)


class TestNameSpec:
    def test_names_classics(self):
        assert name_spec(lru_spec(4)) == "lru"
        assert name_spec(fifo_spec(8)) == "fifo"
        assert name_spec(derive_spec_from_policy(PlruPolicy(8))) == "plru"

    def test_names_up_to_relabeling(self):
        relabeled = lru_spec(4).conjugate((3, 1, 0, 2, ) if False else (2, 0, 1, 3))
        assert name_spec(relabeled) == "lru"

    def test_undocumented_returns_none(self):
        from repro.core.permutation import standard_miss_perm
        from repro.policies import PermutationSpec
        from repro.policies.permutation import identity

        # Hits at 0/1 swap the top two positions, others identity: not a
        # classic policy.
        odd = PermutationSpec(
            4,
            ((1, 0, 2, 3), (1, 0, 2, 3), identity(4), identity(4)),
            standard_miss_perm(4),
        )
        assert name_spec(odd) is None
