"""Tests for the must/may abstract domains."""

import pytest

from repro.analysis import AbstractCacheState
from repro.cache import CacheConfig
from repro.errors import ConfigurationError

CONFIG = CacheConfig("L1", 1024, 4)  # 4 sets, 4-way


def must():
    return AbstractCacheState.empty(CONFIG, "must")


def may():
    return AbstractCacheState.empty(CONFIG, "may")


class TestMustDomain:
    def test_access_brings_line_in_at_age_zero(self):
        state = must()
        state.access(0x100)
        assert state.contains(0x100)
        assert state.age_of(0x100) == 0

    def test_same_line_offsets_coincide(self):
        state = must()
        state.access(0x100)
        assert state.contains(0x13F)

    def test_unknown_access_ages_everything_in_set(self):
        state = must()
        stride = CONFIG.way_size
        state.access(0)
        state.access(stride)  # same set, unknown age -> ages 0
        assert state.age_of(0) == 1

    def test_ages_saturate_out(self):
        state = must()
        stride = CONFIG.way_size
        state.access(0)
        for k in range(1, 5):
            state.access(k * stride)
        assert not state.contains(0)  # aged beyond associativity

    def test_rejuvenation_does_not_age_older_lines(self):
        state = must()
        stride = CONFIG.way_size
        state.access(0)
        state.access(stride)
        state.access(stride)  # re-access: age 0 already-younger unchanged
        assert state.age_of(0) == 1

    def test_join_is_intersection_with_max(self):
        left, right = must(), must()
        stride = CONFIG.way_size
        left.access(0)
        left.access(stride)  # ages: 0 -> 1, stride -> 0
        right.access(0)  # ages: 0 -> 0
        joined = left.join(right)
        assert joined.age_of(0) == 1
        assert not joined.contains(stride)

    def test_different_sets_independent(self):
        state = must()
        state.access(0)
        state.access(64)  # different set
        assert state.age_of(0) == 0


class TestMayDomain:
    def test_join_is_union_with_min(self):
        left, right = may(), may()
        stride = CONFIG.way_size
        left.access(0)
        left.access(stride)
        right.access(0)
        joined = left.join(right)
        assert joined.contains(stride)
        assert joined.age_of(0) == 0  # min(1, 0)

    def test_line_leaves_only_after_enough_distinct_accesses(self):
        state = may()
        stride = CONFIG.way_size
        state.access(0)
        for k in range(1, 4):
            state.access(k * stride)
        assert state.contains(0)  # 3 distinct: may still be cached
        state.access(4 * stride)
        assert not state.contains(0)  # 4 distinct: definitely out (LRU)


class TestPlumbing:
    def test_kind_validated(self):
        with pytest.raises(ConfigurationError):
            AbstractCacheState(CONFIG, 4, "maybe")

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            AbstractCacheState(CONFIG, 0, "must")

    def test_join_compat_validated(self):
        with pytest.raises(ConfigurationError):
            must().join(may())

    def test_copy_independent(self):
        state = must()
        state.access(0)
        copy = state.copy()
        state.access(CONFIG.way_size)
        assert copy.age_of(0) == 0

    def test_key_stable(self):
        a, b = must(), must()
        a.access(0x100)
        b.access(0x100)
        assert a.key() == b.key()
