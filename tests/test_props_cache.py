"""Property-based tests for address handling and caches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import AddressCodec, Cache, CacheConfig

configs = st.sampled_from(
    [
        CacheConfig("a", 1024, 2),
        CacheConfig("b", 4096, 4),
        CacheConfig("c", 32 * 1024, 8),
        CacheConfig("d", 24 * 1024, 6),  # non-power-of-two size
        CacheConfig("e", 4096, 64),  # fully associative
        CacheConfig("f", 4096, 1),  # direct mapped
    ]
)

addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


@given(config=configs, address=addresses)
@settings(max_examples=300, deadline=None)
def test_codec_round_trip(config, address):
    """compose(decompose(x)) == x for every config and address."""
    codec = AddressCodec(config)
    d = codec.decompose(address)
    assert codec.compose(d.tag, d.set_index, d.offset) == address
    assert 0 <= d.set_index < config.num_sets
    assert 0 <= d.offset < config.line_size


@given(config=configs, address=addresses)
@settings(max_examples=200, deadline=None)
def test_same_line_same_placement(config, address):
    """All offsets of one line map to the same (tag, set)."""
    codec = AddressCodec(config)
    base = codec.line_address(address)
    d_base = codec.decompose(base)
    d_addr = codec.decompose(address)
    assert (d_base.tag, d_base.set_index) == (d_addr.tag, d_addr.set_index)


@given(
    config=configs,
    trace=st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), max_size=200),
)
@settings(max_examples=100, deadline=None)
def test_cache_accounting_invariants(config, trace):
    """hits + misses == accesses; occupancy bounded by capacity."""
    cache = Cache(config, "lru")
    for address in trace:
        cache.access(address)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(trace)
    assert stats.fills == stats.misses
    assert len(cache.resident_addresses()) <= config.num_sets * config.ways
    # Distinct lines touched bounds the fills from below per set.
    assert stats.evictions <= stats.fills


@given(trace=st.lists(st.integers(min_value=0, max_value=(1 << 14) - 1), max_size=200))
@settings(max_examples=100, deadline=None)
def test_rerun_determinism(trace):
    """The same trace through an identical cache gives identical stats."""

    def run():
        cache = Cache(CacheConfig("x", 4096, 4), "plru")
        for address in trace:
            cache.access(address)
        return (cache.stats.hits, cache.stats.misses, cache.resident_addresses())

    assert run() == run()
