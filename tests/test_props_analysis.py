"""Property-based soundness tests for the static cache analysis.

The single most important property of the whole analysis package: on
randomly generated programs, every always-hit classification truly hits
and every always-miss truly misses, on every sampled execution path —
for the plain LRU analysis and for the generic analysis under several
policies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import BasicBlock, Program, analyze, check_soundness
from repro.analysis.generic import generic_analysis
from repro.cache import CacheConfig
from repro.policies import make_policy

CONFIG = CacheConfig("L1", 512, 4)  # 2 sets, 4-way: plenty of contention
LINE_POOL = [k * 64 for k in range(10)]  # 10 lines over 2 sets


@st.composite
def random_programs(draw):
    """Random small CFGs: 2-5 blocks, random accesses, random edges."""
    block_count = draw(st.integers(min_value=2, max_value=5))
    blocks = {}
    for index in range(block_count):
        accesses = draw(
            st.lists(st.sampled_from(LINE_POOL), min_size=0, max_size=6)
        )
        blocks[f"B{index}"] = BasicBlock(f"B{index}", tuple(accesses))
    edges = {}
    names = list(blocks)
    for index, name in enumerate(names):
        # Bias towards forward edges so paths terminate, allow back edges.
        candidates = names[index + 1 :] + ([names[index]] if draw(st.booleans()) else [])
        if index > 0 and draw(st.booleans()):
            candidates.append(names[draw(st.integers(0, index - 1))])
        count = draw(st.integers(min_value=0, max_value=min(2, len(candidates))))
        if candidates and count:
            targets = tuple(
                draw(st.sampled_from(candidates)) for _ in range(count)
            )
            edges[name] = tuple(dict.fromkeys(targets))
    return Program(blocks=blocks, edges=edges, entry="B0")


@given(program=random_programs(), seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_lru_analysis_sound(program, seed):
    result = analyze(program, CONFIG)
    assert check_soundness(program, CONFIG, result, paths=15, seed=seed) == []


@given(program=random_programs())
@settings(max_examples=15, deadline=None)
def test_generic_analysis_sound_for_non_lru_policies(program):
    for policy_name in ("fifo", "plru", "bitplru"):
        policy = make_policy(policy_name, CONFIG.ways)
        result = generic_analysis(program, CONFIG, policy)
        violations = check_soundness(
            program, CONFIG, result, policy=policy_name, paths=10
        )
        assert violations == [], (policy_name, violations)


@given(program=random_programs())
@settings(max_examples=25, deadline=None)
def test_lru_guarantees_dominate_generic_weaker_policies(program):
    """The LRU analysis proves at least as many hits as FIFO's generic
    analysis on the same program — mls(LRU) is maximal."""
    lru_hits = analyze(program, CONFIG).counts()["always-hit"]
    fifo_hits = generic_analysis(
        program, CONFIG, make_policy("fifo", CONFIG.ways)
    ).counts()["always-hit"]
    assert lru_hits >= fifo_hits
