"""Tests for stack-distance analysis and generation."""

import pytest

from repro.cache import CacheConfig
from repro.errors import ConfigurationError
from repro.eval.missratio import miss_ratio
from repro.workloads import (
    INFINITE,
    StackDistanceModel,
    Trace,
    lru_miss_ratio_from_histogram,
    sequential_scan,
    stack_distance_histogram,
    stack_distances,
)


class TestStackDistances:
    def test_known_sequence(self):
        trace = Trace.from_lines("t", [1, 2, 1, 3, 2, 1])
        assert stack_distances(trace) == [INFINITE, INFINITE, 1, INFINITE, 2, 2]

    def test_scan_all_infinite_first_pass(self):
        trace = sequential_scan(5)
        assert stack_distances(trace) == [INFINITE] * 5

    def test_second_pass_distance_equals_footprint(self):
        trace = sequential_scan(5, passes=2)
        assert stack_distances(trace)[5:] == [4] * 5

    def test_histogram(self):
        trace = Trace.from_lines("t", [1, 1, 1])
        assert stack_distance_histogram(trace) == {INFINITE: 1, 0: 2}


class TestMattson:
    def test_matches_fully_associative_lru_simulation(self):
        # The single-pass Mattson computation must agree with an actual
        # fully associative LRU cache at every capacity.
        from repro.workloads import zipf

        trace = zipf(60, 3000, alpha=1.0, seed=3)
        histogram = stack_distance_histogram(trace)
        for capacity in (4, 16, 64):
            config = CacheConfig("fa", capacity * 64, capacity)  # 1 set
            simulated = miss_ratio(trace, config, "lru")
            analytic = lru_miss_ratio_from_histogram(histogram, capacity)
            assert simulated == pytest.approx(analytic)

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            lru_miss_ratio_from_histogram({0: 1}, 0)


class TestStackDistanceModel:
    def test_generates_requested_profile(self):
        model = StackDistanceModel([(0, 5.0), (3, 1.0)], new_line_weight=1.0, seed=0)
        trace = model.generate(5000)
        histogram = stack_distance_histogram(trace)
        # Distance 0 should dominate distance 3 roughly 5:1.
        assert histogram[0] > 3 * histogram.get(3, 1)

    def test_deterministic(self):
        a = StackDistanceModel([(1, 1.0)], 0.5, seed=4).generate(100)
        b = StackDistanceModel([(1, 1.0)], 0.5, seed=4).generate(100)
        assert a == b

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            StackDistanceModel([(0, -1.0)], 1.0)
        with pytest.raises(ConfigurationError):
            StackDistanceModel([], 0.0)
        with pytest.raises(ConfigurationError):
            StackDistanceModel([(-1, 1.0)], 1.0)

    def test_length_validation(self):
        model = StackDistanceModel([(0, 1.0)], 1.0)
        with pytest.raises(ConfigurationError):
            model.generate(0)
