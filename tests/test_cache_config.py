"""Tests for CacheConfig validation and derived geometry."""

import pytest

from repro.cache import CacheConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_standard_l1(self):
        config = CacheConfig("L1", 32 * 1024, 8)
        assert config.num_sets == 64
        assert config.offset_bits == 6
        assert config.index_bits == 6
        assert config.way_size == 4096

    def test_non_power_of_two_size_allowed(self):
        # Atom's 24 KiB 6-way L1: 64 sets, perfectly valid.
        config = CacheConfig("L1", 24 * 1024, 6)
        assert config.num_sets == 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError, match="sets"):
            CacheConfig("bad", 3 * 64 * 8, 8, line_size=64)  # 3 sets

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 1000, 8)

    def test_rejects_bad_line_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 8, line_size=48)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 0)

    def test_rejects_unknown_inclusion(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("bad", 32 * 1024, 8, inclusion="mostly")

    def test_describe(self):
        text = CacheConfig("L2", 256 * 1024, 8, inclusion="nine").describe()
        assert "L2" in text and "256" in text and "8-way" in text


class TestGeometry:
    def test_direct_mapped(self):
        config = CacheConfig("dm", 4096, 1)
        assert config.num_sets == 64

    def test_fully_associative(self):
        config = CacheConfig("fa", 4096, 64)
        assert config.num_sets == 1
        assert config.index_bits == 0
