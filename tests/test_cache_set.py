"""Tests for CacheSet mechanics."""

import pytest

from repro.cache.set import CacheSet
from repro.errors import SimulationError
from repro.policies import LruPolicy


def make_set(ways=4):
    return CacheSet(ways, LruPolicy(ways))


class TestFillOrder:
    def test_invalid_ways_filled_ascending(self):
        cache_set = make_set()
        ways = [cache_set.access(tag).way for tag in (10, 11, 12, 13)]
        assert ways == [0, 1, 2, 3]

    def test_no_eviction_until_full(self):
        cache_set = make_set()
        for tag in (10, 11, 12):
            assert cache_set.access(tag).evicted_tag is None
        assert not cache_set.full
        cache_set.access(13)
        assert cache_set.full


class TestAccess:
    def test_hit_does_not_change_occupancy(self):
        cache_set = make_set()
        for tag in (1, 2, 3, 4):
            cache_set.access(tag)
        before = cache_set.resident_tags()
        cache_set.access(2)
        assert cache_set.resident_tags() == before

    def test_no_duplicate_tags(self):
        import random

        rng = random.Random(0)
        cache_set = make_set()
        for _ in range(500):
            cache_set.access(rng.randrange(8))
            contents = [t for t in cache_set.contents() if t is not None]
            assert len(contents) == len(set(contents))

    def test_fill_of_resident_tag_rejected(self):
        cache_set = make_set()
        cache_set.access(1)
        with pytest.raises(SimulationError):
            cache_set.fill(1)

    def test_write_sets_dirty(self):
        cache_set = make_set()
        cache_set.access(1, write=True)
        for tag in (2, 3, 4, 5, 6, 7):
            result = cache_set.access(tag)
            if result.evicted_tag == 1:
                assert result.evicted_dirty
                return
        pytest.fail("tag 1 was never evicted")


class TestTouchTag:
    def test_touch_miss_does_not_fill(self):
        cache_set = make_set()
        assert cache_set.touch_tag(9) is None
        assert cache_set.resident_tags() == set()

    def test_touch_hit_updates_recency(self):
        cache_set = make_set(2)
        cache_set.access(1)
        cache_set.access(2)
        cache_set.touch_tag(1)
        assert cache_set.access(3).evicted_tag == 2


class TestMaintenance:
    def test_invalidate(self):
        cache_set = make_set()
        cache_set.access(1)
        assert cache_set.invalidate(1) is True
        assert cache_set.invalidate(1) is False
        assert 1 not in cache_set.resident_tags()

    def test_flush(self):
        cache_set = make_set()
        for tag in (1, 2, 3, 4):
            cache_set.access(tag)
        cache_set.flush()
        assert cache_set.resident_tags() == set()
        assert cache_set.policy.state_key() == (0, 1, 2, 3)

    def test_preload(self):
        cache_set = make_set()
        cache_set.preload([7, 8, None, 9])
        assert cache_set.contents() == [7, 8, None, 9]

    def test_preload_rejects_duplicates(self):
        cache_set = make_set()
        with pytest.raises(SimulationError):
            cache_set.preload([1, 1, 2, 3])

    def test_preload_rejects_wrong_length(self):
        cache_set = make_set()
        with pytest.raises(SimulationError):
            cache_set.preload([1, 2])

    def test_clone_deep(self):
        cache_set = make_set(2)
        cache_set.access(1)
        copy = cache_set.clone()
        cache_set.access(2)
        cache_set.access(3)
        assert copy.resident_tags() == {1}

    def test_state_key(self):
        cache_set = make_set(2)
        cache_set.access(5)
        key = cache_set.state_key()
        assert key == ((5, None), (0, 1))

    def test_policy_ways_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            CacheSet(4, LruPolicy(2))
