"""Tests for hashed indexing and eviction-set discovery."""

import pytest

from repro.cache import AddressCodec, Cache, CacheConfig
from repro.core.evictionsets import (
    EvictionTester,
    PlatformEvictionTester,
    conflict_partition,
    find_eviction_set,
)
from repro.errors import ConfigurationError, MeasurementError
from repro.hardware import HardwarePlatform, LevelSpec, ProcessorSpec


def hashed_config(size=8 * 1024, ways=4):
    return CacheConfig("LLC", size, ways, index_hash="xor-fold")


def sliced_platform(size=8 * 1024, ways=4, policy="lru"):
    spec = ProcessorSpec(
        name="sliced",
        description="hashed LLC testbench",
        levels=(LevelSpec(hashed_config(size, ways), policy),),
    )
    return HardwarePlatform(spec)


class TestHashedCodec:
    def test_hash_differs_from_bits(self):
        hashed = AddressCodec(hashed_config())
        plain = AddressCodec(CacheConfig("LLC", 8 * 1024, 4))
        differing = sum(
            1
            for line in range(4096)
            if hashed.decompose(line * 64).set_index
            != plain.decompose(line * 64).set_index
        )
        assert differing > 1000  # high bits feed the hashed index

    def test_same_low_bits_different_sets(self):
        # The defining property of sliced addressing: equal index bits no
        # longer imply equal sets.
        codec = AddressCodec(hashed_config())
        way_size = hashed_config().way_size
        sets = {codec.decompose(k * way_size).set_index for k in range(16)}
        assert len(sets) > 1

    def test_compose_round_trip(self):
        codec = AddressCodec(hashed_config())
        for address in (0, 0x40, 0x12345, 1 << 22):
            d = codec.decompose(address)
            assert codec.compose(d.tag, d.set_index, d.offset) == address

    def test_compose_rejects_wrong_set(self):
        codec = AddressCodec(hashed_config())
        d = codec.decompose(0x12340)
        wrong = (d.set_index + 1) % codec.config.num_sets
        with pytest.raises(ValueError):
            codec.compose(d.tag, wrong, 0)

    def test_same_set_address_scans(self):
        codec = AddressCodec(hashed_config())
        addresses = [codec.same_set_address(3, k) for k in range(6)]
        assert len(set(addresses)) == 6
        assert all(codec.decompose(a).set_index == 3 for a in addresses)

    def test_unknown_hash_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("LLC", 8 * 1024, 4, index_hash="sha256")

    def test_hashed_cache_simulates(self):
        cache = Cache(hashed_config(), "lru")
        import random

        rng = random.Random(0)
        for _ in range(3000):
            cache.access(rng.randrange(1 << 20) & ~0x3F)
        assert cache.stats.accesses == 3000


class _FakeTester(EvictionTester):
    """Ground-truth tester over a known set mapping (fast unit tests)."""

    def __init__(self, codec: AddressCodec, ways: int) -> None:
        self.codec = codec
        self.ways = ways
        self.tests = 0

    def evicts(self, candidates, victim) -> bool:
        self.tests += 1
        victim_set = self.codec.decompose(victim).set_index
        conflicts = sum(
            1
            for address in candidates
            if self.codec.decompose(address).set_index == victim_set
        )
        return conflicts >= self.ways


class TestFindEvictionSet:
    def setup_method(self):
        self.codec = AddressCodec(hashed_config())
        self.tester = _FakeTester(self.codec, ways=4)
        self.pool = [line * 64 for line in range(2048)]
        self.victim = 1 << 21

    def test_reduces_to_target_size(self):
        found = find_eviction_set(self.tester, self.victim, self.pool, target_size=4)
        assert len(found) == 4
        victim_set = self.codec.decompose(self.victim).set_index
        assert all(
            self.codec.decompose(a).set_index == victim_set for a in found
        )

    def test_pool_too_small_rejected(self):
        with pytest.raises(MeasurementError, match="pool"):
            find_eviction_set(self.tester, self.victim, [64, 128], target_size=4)

    def test_victim_excluded_from_pool(self):
        found = find_eviction_set(
            self.tester, self.victim, self.pool + [self.victim], target_size=4
        )
        assert self.victim not in found

    def test_group_testing_beats_linear(self):
        # The group reduction needs far fewer tests than one-by-one.
        found = find_eviction_set(self.tester, self.victim, self.pool, target_size=4)
        assert self.tester.tests < len(self.pool) // 2

    def test_bad_target_rejected(self):
        with pytest.raises(MeasurementError):
            find_eviction_set(self.tester, self.victim, self.pool, target_size=0)


class TestConflictPartition:
    def test_partitions_into_same_set_groups(self):
        codec = AddressCodec(hashed_config())
        tester = _FakeTester(codec, ways=4)
        # 5 addresses in each of 3 sets.
        addresses = []
        for set_index in (0, 5, 9):
            addresses += [codec.same_set_address(set_index, k) for k in range(5)]
        groups = conflict_partition(tester, addresses, target_size=4)
        assert len(groups) == 3
        for group in groups:
            sets = {codec.decompose(a).set_index for a in group}
            assert len(sets) == 1


class TestPlatformTester:
    def test_end_to_end_on_simulated_hardware(self):
        platform = sliced_platform()
        buffer = platform.allocate(1 << 21)
        pool = list(range(buffer.base, buffer.base + (1 << 19), 64))
        victim = buffer.base + (1 << 20)
        tester = PlatformEvictionTester(platform, "LLC")
        found = find_eviction_set(tester, victim, pool, target_size=4)
        assert len(found) == 4
        codec = platform.hierarchy.level("LLC").codec
        victim_set = codec.decompose(platform.translate(victim)).set_index
        member_sets = {
            codec.decompose(platform.translate(a)).set_index for a in found
        }
        assert member_sets == {victim_set}

    def test_found_set_is_minimal(self):
        platform = sliced_platform()
        buffer = platform.allocate(1 << 21)
        pool = list(range(buffer.base, buffer.base + (1 << 19), 64))
        victim = buffer.base + (1 << 20)
        tester = PlatformEvictionTester(platform, "LLC")
        found = find_eviction_set(tester, victim, pool, target_size=4)
        for index in range(len(found)):
            reduced = found[:index] + found[index + 1 :]
            assert not tester.evicts(reduced, victim)

    def test_passes_validated(self):
        with pytest.raises(MeasurementError):
            PlatformEvictionTester(sliced_platform(), "LLC", passes=0)
