"""Tests for the repro-cache command line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_infer_defaults(self):
        args = build_parser().parse_args(["infer", "--processor", "atom-d525-like"])
        assert args.level == "L1"
        assert args.repetitions == 1

    def test_unknown_processor_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--processor", "z80"])


class TestCommands:
    def test_list_processors(self, capsys):
        assert main(["list-processors"]) == 0
        out = capsys.readouterr().out
        assert "atom-d525-like" in out
        assert "nehalem-like" in out

    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        assert "lru" in out.splitlines()
        assert "plru" in out.splitlines()

    def test_infer_with_check(self, capsys):
        code = main(
            ["infer", "--processor", "atom-d525-like", "--level", "L1", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lru (permutation)" in out
        assert "MATCH" in out

    def test_evaluate_prints_table(self, capsys):
        code = main(["evaluate", "--policies", "lru,fifo", "--size", "4096", "--ways", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload" in out
        assert "loop-friendly" in out

    def test_predictability_prints_metrics(self, capsys):
        code = main(["predictability", "--policies", "lru,fifo", "--ways", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "evict" in out
        # LRU evict at 4 ways is 4, FIFO is 7.
        lines = [line for line in out.splitlines() if line.startswith("lru")]
        assert lines and "| 4" in lines[0].replace("  ", " ")


class TestQueryCommand:
    def test_query_simulated_policy(self, capsys):
        assert main(["query", "--policy", "lru", "--ways", "2", "a b a @ a?"]) == 0
        assert capsys.readouterr().out.strip() == "a=hit"

    def test_query_fifo_differs(self, capsys):
        assert main(["query", "--policy", "fifo", "--ways", "2", "a b a @ a?"]) == 0
        assert capsys.readouterr().out.strip() == "a=miss"

    def test_query_processor(self, capsys):
        code = main(
            ["query", "--processor", "atom-d525-like", "--level", "L1",
             "a 6*@ a?"]
        )
        assert code == 0
        # 6 fresh blocks into a 6-way LRU set evict a.
        assert capsys.readouterr().out.strip() == "a=miss"

    def test_query_parse_error_reported(self, capsys):
        assert main(["query", "--policy", "lru", "2*( a"]) == 2
        assert "error" in capsys.readouterr().err
