"""Tests for the repro-cache command line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import ledger as obs_ledger
from repro.obs import read_jsonl, validate_result_file


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_infer_defaults(self):
        args = build_parser().parse_args(["infer", "--processor", "atom-d525-like"])
        assert args.level == "L1"
        assert args.repetitions == 1

    def test_unknown_processor_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--processor", "z80"])


class TestCommands:
    def test_list_processors(self, capsys):
        assert main(["list-processors"]) == 0
        out = capsys.readouterr().out
        assert "atom-d525-like" in out
        assert "nehalem-like" in out

    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        assert "lru" in out.splitlines()
        assert "plru" in out.splitlines()

    def test_infer_with_check(self, capsys):
        code = main(
            ["infer", "--processor", "atom-d525-like", "--level", "L1", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lru (permutation)" in out
        assert "MATCH" in out

    def test_evaluate_prints_table(self, capsys):
        code = main(["evaluate", "--policies", "lru,fifo", "--size", "4096", "--ways", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload" in out
        assert "loop-friendly" in out

    def test_predictability_prints_metrics(self, capsys):
        code = main(["predictability", "--policies", "lru,fifo", "--ways", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "evict" in out
        # LRU evict at 4 ways is 4, FIFO is 7.
        lines = [line for line in out.splitlines() if line.startswith("lru")]
        assert lines and "| 4" in lines[0].replace("  ", " ")


class TestQueryCommand:
    def test_query_simulated_policy(self, capsys):
        assert main(["query", "--policy", "lru", "--ways", "2", "a b a @ a?"]) == 0
        assert capsys.readouterr().out.strip() == "a=hit"

    def test_query_fifo_differs(self, capsys):
        assert main(["query", "--policy", "fifo", "--ways", "2", "a b a @ a?"]) == 0
        assert capsys.readouterr().out.strip() == "a=miss"

    def test_query_processor(self, capsys):
        code = main(
            ["query", "--processor", "atom-d525-like", "--level", "L1",
             "a 6*@ a?"]
        )
        assert code == 0
        # 6 fresh blocks into a 6-way LRU set evict a.
        assert capsys.readouterr().out.strip() == "a=miss"

    def test_query_parse_error_reported(self, capsys):
        assert main(["query", "--policy", "lru", "2*( a"]) == 2
        assert "error" in capsys.readouterr().err


class TestObservability:
    def test_query_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        metrics_file = tmp_path / "run.metrics.json"
        code = main(
            ["query", "--policy", "lru", "--ways", "2",
             "--trace", str(trace_file), "--metrics", str(metrics_file),
             "a b a?"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "a=hit"
        events = read_jsonl(trace_file)
        assert any(e["kind"] == "oracle.query" for e in events)
        result = validate_result_file(metrics_file)
        assert result.name == "cli-query"
        assert result.params["policy"] == "lru"
        assert result.metrics["counters"]["oracle.measurements"] >= 1

    def test_evaluate_metrics_sidecar_validates(self, tmp_path, capsys):
        metrics_file = tmp_path / "eval.metrics.json"
        code = main(
            ["evaluate", "--policies", "lru,fifo", "--size", "4096",
             "--ways", "4", "--metrics", str(metrics_file)]
        )
        assert code == 0
        result = validate_result_file(metrics_file)
        counters = result.metrics["counters"]
        cells = sum(
            count for name, count in counters.items()
            if name.startswith("runner.cells.")
        )
        assert cells > 0

    def test_trace_subcommand_filters(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        assert main(
            ["query", "--policy", "lru", "--ways", "2",
             "--trace", str(trace_file), "a b a? c?"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--kind", "oracle."]) == 0
        out = capsys.readouterr().out
        assert "oracle.query" in out
        assert main(["trace", str(trace_file), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "oracle.query" in out
        assert "total" in out

    def test_trace_subcommand_where_and_limit(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        events = [
            {"seq": 1, "kind": "oracle.query", "misses": 0},
            {"seq": 2, "kind": "oracle.query", "misses": 2},
            {"seq": 3, "kind": "runner.cell", "source": "serial"},
        ]
        trace_file.write_text(
            "\n".join(json.dumps(event) for event in events) + "\n"
        )
        assert main(["trace", str(trace_file), "--where", "misses=2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1 and "misses=2" in out[0]
        assert main(["trace", str(trace_file), "--limit", "1"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1

    def test_trace_subcommand_bad_where(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        trace_file.write_text("")
        assert main(["trace", str(trace_file), "--where", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_metrics_keeps_the_kernel_engaged(self, tmp_path, capsys):
        """--metrics alone must not disable the compiled fast path."""
        from repro.runner import clear_memo

        clear_memo()  # memoized cells would bypass the kernel entirely
        metrics_file = tmp_path / "eval.metrics.json"
        code = main(
            ["evaluate", "--policies", "lru", "--size", "4096",
             "--ways", "4", "--metrics", str(metrics_file)]
        )
        assert code == 0
        counters = validate_result_file(metrics_file).metrics["counters"]
        assert counters.get("kernel.calls", 0) > 0

    def test_metrics_scoped_per_invocation(self, tmp_path, capsys):
        """Back-to-back commands in one process must not bleed counters."""
        first = tmp_path / "a.metrics.json"
        second = tmp_path / "b.metrics.json"
        argv = ["query", "--policy", "lru", "--ways", "2", "a b a?"]
        assert main(argv + ["--metrics", str(first)]) == 0
        assert main(argv + ["--metrics", str(second)]) == 0
        capsys.readouterr()
        counters_a = validate_result_file(first).metrics["counters"]
        counters_b = validate_result_file(second).metrics["counters"]
        assert counters_a == counters_b


class TestCacheCommand:
    def test_cache_warm_then_stats(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        code = main(
            ["cache", "warm", "--dir", str(store_dir),
             "--policies", "lru,fifo,random", "--ways", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "persisted 2/3 automata" in out
        assert "unsupported" in out  # random has no automaton
        assert main(["cache", "stats", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert "lru" in out and "fifo" in out

    def test_cache_clear(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(["cache", "warm", "--dir", str(store_dir),
                     "--policies", "plru", "--ways", "4"]) == 0
        assert main(["cache", "clear", "--dir", str(store_dir)]) == 0
        assert "removed 1 artifact(s)" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", str(store_dir)]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_stats_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "stats", "--dir", str(tmp_path / "nope")]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_dir_override_is_restored(self, tmp_path):
        from repro.kernels import store

        before = store.cache_dir()
        assert main(["cache", "stats", "--dir", str(tmp_path / "elsewhere")]) == 0
        assert store.cache_dir() == before

    def test_cache_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestLedgerAndReport:
    def _run_with_metrics(self, tmp_path, name="run"):
        metrics_file = tmp_path / f"{name}.metrics.json"
        assert main(
            ["query", "--policy", "lru", "--ways", "2",
             "--metrics", str(metrics_file), "a b a?"]
        ) == 0
        return metrics_file

    def test_metrics_sidecar_brings_a_ledger(self, tmp_path, capsys):
        metrics_file = self._run_with_metrics(tmp_path)
        ledger_path = obs_ledger.ledger_path_for(metrics_file)
        assert ledger_path.exists()
        ledger = obs_ledger.read_ledger(ledger_path)
        assert ledger.name == "cli-query"
        assert ledger.wall_seconds >= 0
        assert ledger.counters.get("oracle.measurements", 0) >= 1
        artifact_names = [a["path"] for a in ledger.artifacts]
        assert metrics_file.name in artifact_names

    def test_report_renders_a_single_ledger(self, tmp_path, capsys):
        metrics_file = self._run_with_metrics(tmp_path)
        capsys.readouterr()
        ledger_path = obs_ledger.ledger_path_for(metrics_file)
        assert main(["report", str(ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-query" in out
        assert "oracle.measurements" in out

    def test_report_diff_renders_both_runs(self, tmp_path, capsys):
        a = obs_ledger.ledger_path_for(self._run_with_metrics(tmp_path, "a"))
        b = obs_ledger.ledger_path_for(self._run_with_metrics(tmp_path, "b"))
        capsys.readouterr()
        assert main(["report", "--diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "wall_seconds" in out
        assert "oracle.measurements" in out

    def test_report_diff_needs_exactly_two(self, tmp_path, capsys):
        path = obs_ledger.ledger_path_for(self._run_with_metrics(tmp_path))
        capsys.readouterr()
        assert main(["report", "--diff", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_missing_file(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.ledger.json")]) == 2
        assert "error" in capsys.readouterr().err


class TestDbCommand:
    def _populate(self, directory):
        from repro.measuredb import db as mdb

        database = mdb.MeasurementDB(directory / mdb.DB_FILENAME)
        database.put_many(
            "scope-a", [(mdb.request_digest([], [0]), 0, 1, 1, None)]
        )
        database.put_many(
            "scope-b", [(mdb.request_digest([], [1]), 0, 1, 0, b"\x01")]
        )
        database.close()

    def test_db_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert main(["db", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scope-a" in out and "scope-b" in out
        assert "rows: 2 in 2 scope(s)" in out

    def test_db_export_and_clear_scope(self, tmp_path, capsys):
        self._populate(tmp_path)
        output = tmp_path / "rows.jsonl"
        assert main(["db", "export", "--dir", str(tmp_path),
                     "--output", str(output)]) == 0
        rows = [json.loads(line) for line in output.read_text().splitlines()]
        assert {row["scope"] for row in rows} == {"scope-a", "scope-b"}
        capsys.readouterr()
        assert main(["db", "clear", "--dir", str(tmp_path),
                     "--scope", "scope-a"]) == 0
        assert "removed 1 row(s)" in capsys.readouterr().out
        assert main(["db", "export", "--dir", str(tmp_path)]) == 0
        remaining = capsys.readouterr().out.splitlines()
        assert len(remaining) == 1 and json.loads(remaining[0])["scope"] == "scope-b"

    def test_db_stats_on_missing_database(self, tmp_path, capsys):
        assert main(["db", "stats", "--dir", str(tmp_path / "nope")]) == 0
        assert "rows: 0 in 0 scope(s)" in capsys.readouterr().out

    def test_db_dir_override_is_restored(self, tmp_path):
        from repro import measuredb

        before = measuredb.db_dir()
        assert main(["db", "stats", "--dir", str(tmp_path / "elsewhere")]) == 0
        assert measuredb.db_dir() == before

    def test_db_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["db"])


class TestInferWithDb:
    def test_warm_rerun_hits_only_the_db(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "stores")
        cold_metrics = tmp_path / "cold.metrics.json"
        warm_metrics = tmp_path / "warm.metrics.json"
        base = ["infer", "--processor", "atom-d525-like", "--level", "L1",
                "--check", "--db", "--cache-dir", cache_dir]
        assert main(base + ["--metrics", str(cold_metrics)]) == 0
        cold_out = capsys.readouterr().out
        assert main(base + ["--metrics", str(warm_metrics)]) == 0
        warm_out = capsys.readouterr().out
        # Identical finding AND identical logical cost line.
        assert warm_out == cold_out
        cold = obs_ledger.read_ledger(obs_ledger.ledger_path_for(cold_metrics))
        warm = obs_ledger.read_ledger(obs_ledger.ledger_path_for(warm_metrics))
        assert cold.counters.get("db.miss", 0) > 0
        assert cold.counters.get("db.write", 0) == cold.counters["db.miss"]
        assert warm.counters.get("db.miss", 0) == 0
        assert warm.counters.get("oracle.measurements", 0) == 0
        assert warm.counters["db.hit"] == cold.counters["db.miss"]

    def test_noisy_platform_reports_unwrapped(self, tmp_path, capsys):
        code = main(["infer", "--processor", "atom-d525-like", "--noise", "0.01",
                     "--repetitions", "3", "--db",
                     "--cache-dir", str(tmp_path / "stores")])
        captured = capsys.readouterr()
        assert code in (0, 1)  # noise may defeat inference; not under test
        assert "no provenance" in captured.err


class TestReportGracefulFailure:
    """Malformed report inputs exit 2 with a one-line error, no traceback."""

    def test_truncated_json(self, tmp_path, capsys):
        path = tmp_path / "half.ledger.json"
        path.write_text('{"name": "e3", "wall')
        assert main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_non_ledger_json(self, tmp_path, capsys):
        path = tmp_path / "notledger.json"
        path.write_text(json.dumps({"rows": [1, 2, 3]}))
        assert main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "missing fields" in err

    def test_missing_file_names_the_path(self, tmp_path, capsys):
        absent = tmp_path / "absent.ledger.json"
        assert main(["report", str(absent)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "absent.ledger.json" in err

    def test_directory_input(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestHistoryCommand:
    def _write_ledger(self, directory, name="e_hist", wall=1.0,
                      created="2026-08-01T00:00:00Z"):
        from tests.test_obs_history import make_ledger

        directory.mkdir(parents=True, exist_ok=True)
        return obs_ledger.write_ledger(
            make_ledger(name=name, wall=wall, created=created),
            directory / f"{name}-{created[:10]}.ledger.json",
        )

    def test_ingest_check_stats_clear_cycle(self, tmp_path, capsys):
        results = tmp_path / "results"
        hist = str(tmp_path / "hist")
        self._write_ledger(results, wall=1.0, created="2026-08-01T00:00:00Z")
        self._write_ledger(results, wall=1.1, created="2026-08-02T00:00:00Z")
        assert main(["history", "--dir", hist, "ingest", str(results)]) == 0
        out = capsys.readouterr().out
        assert "ingested 2 new" in out
        # Idempotent re-ingest.
        assert main(["history", "--dir", hist, "ingest", str(results)]) == 0
        assert "2 duplicate(s)" in capsys.readouterr().out
        # Steady series: check passes.
        assert main(["history", "--dir", hist, "check"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        assert main(["history", "--dir", hist, "stats"]) == 0
        assert "runs: 2" in capsys.readouterr().out
        assert main(["history", "--dir", hist, "clear"]) == 0
        assert "removed 2 row(s)" in capsys.readouterr().out

    def test_check_flags_synthetic_outlier(self, tmp_path, capsys):
        results = tmp_path / "results"
        hist = str(tmp_path / "hist")
        self._write_ledger(results, wall=1.0, created="2026-08-01T00:00:00Z")
        self._write_ledger(results, wall=3.0, created="2026-08-09T00:00:00Z")
        assert main(["history", "--dir", hist, "ingest", str(results)]) == 0
        capsys.readouterr()
        assert main(["history", "--dir", hist, "check"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "3.00x" in out

    def test_check_warn_only_suppresses_the_exit_code(self, tmp_path, capsys):
        results = tmp_path / "results"
        hist = str(tmp_path / "hist")
        self._write_ledger(results, wall=1.0, created="2026-08-01T00:00:00Z")
        self._write_ledger(results, wall=3.0, created="2026-08-09T00:00:00Z")
        main(["history", "--dir", hist, "ingest", str(results)])
        capsys.readouterr()
        assert main(["history", "--dir", hist, "check", "--warn-only"]) == 0
        assert "warn-only" in capsys.readouterr().err

    def test_ingest_reports_broken_files(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "bad.ledger.json").write_text('{"half')
        assert main(["history", "--dir", str(tmp_path / "hist"),
                     "ingest", str(results)]) == 1
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert "1 error(s)" in captured.out

    def test_history_action_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["history"])


class TestDashCommand:
    def test_renders_from_ingested_history(self, tmp_path, capsys):
        from tests.test_obs_history import make_ledger

        results = tmp_path / "results"
        results.mkdir()
        obs_ledger.write_ledger(
            make_ledger(name="e_dash"), results / "e_dash.ledger.json"
        )
        hist = str(tmp_path / "hist")
        assert main(["history", "--dir", hist, "ingest", str(results)]) == 0
        capsys.readouterr()
        out_dir = tmp_path / "dash"
        assert main(["dash", "--dir", hist, "-o", str(out_dir),
                     "--results", str(results)]) == 0
        assert (out_dir / "index.html").exists()
        assert (out_dir / "exp-e_dash.html").exists()
        assert "1 run(s)" in capsys.readouterr().out

    def test_empty_history_renders_empty_dashboard(self, tmp_path, capsys):
        out_dir = tmp_path / "dash"
        assert main(["dash", "--dir", str(tmp_path / "hist"),
                     "-o", str(out_dir)]) == 0
        assert (out_dir / "index.html").exists()


class TestHistoryAutoRecord:
    def test_metrics_run_records_into_history(self, tmp_path):
        from repro.obs import history as obs_history

        cache_dir = tmp_path / "stores"
        metrics_file = tmp_path / "q.metrics.json"
        assert main(["query", "--policy", "lru", "--ways", "2",
                     "--cache-dir", str(cache_dir),
                     "--metrics", str(metrics_file), "a b a?"]) == 0
        assert (cache_dir / obs_history.HISTORY_FILENAME).exists()
        db = obs_history.HistoryDB(cache_dir / obs_history.HISTORY_FILENAME)
        try:
            (run,) = db.runs(with_counters=True)
            assert run["name"] == "cli-query"
            assert run["source"] == "cli"
            assert run["counters"].get("oracle.measurements", 0) >= 1
        finally:
            db.close()

    def test_no_metrics_means_no_history_file(self, tmp_path):
        from repro.obs import history as obs_history

        cache_dir = tmp_path / "stores"
        assert main(["query", "--policy", "lru", "--ways", "2",
                     "--cache-dir", str(cache_dir), "a b a?"]) == 0
        assert not (cache_dir / obs_history.HISTORY_FILENAME).exists()

    def test_runner_maps_attached_to_the_recorded_run(self, tmp_path):
        from repro.obs import history as obs_history

        cache_dir = tmp_path / "stores"
        metrics_file = tmp_path / "e.metrics.json"
        assert main(["evaluate", "--policies", "lru,fifo",
                     "--size", "1024", "--ways", "2",
                     "--cache-dir", str(cache_dir),
                     "--metrics", str(metrics_file)]) == 0
        db = obs_history.HistoryDB(cache_dir / obs_history.HISTORY_FILENAME)
        try:
            (run,) = db.runs()
            assert run["maps"], "runner map records should be attached"
            assert run["maps"][0]["cells"] > 0
            assert "sources" in run["maps"][0]
        finally:
            db.close()

    def test_report_against_history_flags_regression(self, tmp_path, capsys):
        from tests.test_obs_history import make_ledger
        from repro.obs import history as obs_history

        hist_dir = tmp_path / "hist"
        db = obs_history.HistoryDB(hist_dir / obs_history.HISTORY_FILENAME)
        db.record_ledger(make_ledger(wall=1.0, created="2026-08-01T00:00:00Z"))
        db.close()
        slow = obs_ledger.write_ledger(
            make_ledger(wall=3.0, created="2026-08-09T00:00:00Z"),
            tmp_path / "slow.ledger.json",
        )
        obs_history.set_history_dir(hist_dir)
        try:
            assert main(["report", "--against-history", str(slow)]) == 1
        finally:
            obs_history.set_history_dir(None)
            obs_history.reset()
        out = capsys.readouterr().out
        assert "vs history" in out
        assert "FAIL" in out
