"""Tests for the repro-cache command line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_jsonl, validate_result_file


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_infer_defaults(self):
        args = build_parser().parse_args(["infer", "--processor", "atom-d525-like"])
        assert args.level == "L1"
        assert args.repetitions == 1

    def test_unknown_processor_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "--processor", "z80"])


class TestCommands:
    def test_list_processors(self, capsys):
        assert main(["list-processors"]) == 0
        out = capsys.readouterr().out
        assert "atom-d525-like" in out
        assert "nehalem-like" in out

    def test_list_policies(self, capsys):
        assert main(["list-policies"]) == 0
        out = capsys.readouterr().out
        assert "lru" in out.splitlines()
        assert "plru" in out.splitlines()

    def test_infer_with_check(self, capsys):
        code = main(
            ["infer", "--processor", "atom-d525-like", "--level", "L1", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lru (permutation)" in out
        assert "MATCH" in out

    def test_evaluate_prints_table(self, capsys):
        code = main(["evaluate", "--policies", "lru,fifo", "--size", "4096", "--ways", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload" in out
        assert "loop-friendly" in out

    def test_predictability_prints_metrics(self, capsys):
        code = main(["predictability", "--policies", "lru,fifo", "--ways", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "evict" in out
        # LRU evict at 4 ways is 4, FIFO is 7.
        lines = [line for line in out.splitlines() if line.startswith("lru")]
        assert lines and "| 4" in lines[0].replace("  ", " ")


class TestQueryCommand:
    def test_query_simulated_policy(self, capsys):
        assert main(["query", "--policy", "lru", "--ways", "2", "a b a @ a?"]) == 0
        assert capsys.readouterr().out.strip() == "a=hit"

    def test_query_fifo_differs(self, capsys):
        assert main(["query", "--policy", "fifo", "--ways", "2", "a b a @ a?"]) == 0
        assert capsys.readouterr().out.strip() == "a=miss"

    def test_query_processor(self, capsys):
        code = main(
            ["query", "--processor", "atom-d525-like", "--level", "L1",
             "a 6*@ a?"]
        )
        assert code == 0
        # 6 fresh blocks into a 6-way LRU set evict a.
        assert capsys.readouterr().out.strip() == "a=miss"

    def test_query_parse_error_reported(self, capsys):
        assert main(["query", "--policy", "lru", "2*( a"]) == 2
        assert "error" in capsys.readouterr().err


class TestObservability:
    def test_query_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        metrics_file = tmp_path / "run.metrics.json"
        code = main(
            ["query", "--policy", "lru", "--ways", "2",
             "--trace", str(trace_file), "--metrics", str(metrics_file),
             "a b a?"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "a=hit"
        events = read_jsonl(trace_file)
        assert any(e["kind"] == "oracle.query" for e in events)
        result = validate_result_file(metrics_file)
        assert result.name == "cli-query"
        assert result.params["policy"] == "lru"
        assert result.metrics["counters"]["oracle.measurements"] >= 1

    def test_evaluate_metrics_sidecar_validates(self, tmp_path, capsys):
        metrics_file = tmp_path / "eval.metrics.json"
        code = main(
            ["evaluate", "--policies", "lru,fifo", "--size", "4096",
             "--ways", "4", "--metrics", str(metrics_file)]
        )
        assert code == 0
        result = validate_result_file(metrics_file)
        counters = result.metrics["counters"]
        cells = sum(
            count for name, count in counters.items()
            if name.startswith("runner.cells.")
        )
        assert cells > 0

    def test_trace_subcommand_filters(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        assert main(
            ["query", "--policy", "lru", "--ways", "2",
             "--trace", str(trace_file), "a b a? c?"]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--kind", "oracle."]) == 0
        out = capsys.readouterr().out
        assert "oracle.query" in out
        assert main(["trace", str(trace_file), "--summary"]) == 0
        out = capsys.readouterr().out
        assert "oracle.query" in out
        assert "total" in out

    def test_trace_subcommand_where_and_limit(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        events = [
            {"seq": 1, "kind": "oracle.query", "misses": 0},
            {"seq": 2, "kind": "oracle.query", "misses": 2},
            {"seq": 3, "kind": "runner.cell", "source": "serial"},
        ]
        trace_file.write_text(
            "\n".join(json.dumps(event) for event in events) + "\n"
        )
        assert main(["trace", str(trace_file), "--where", "misses=2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1 and "misses=2" in out[0]
        assert main(["trace", str(trace_file), "--limit", "1"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1

    def test_trace_subcommand_bad_where(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        trace_file.write_text("")
        assert main(["trace", str(trace_file), "--where", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "error" in capsys.readouterr().err
