"""Tests for distinguishing-sequence search."""

import pytest

from repro.core.distinguish import (
    bfs_distinguishing_sequence,
    established_set,
    miss_count,
    random_distinguishing_sequence,
    response,
)
from repro.policies import (
    BitPlruPolicy,
    FifoPolicy,
    LruPolicy,
    NruPolicy,
    PlruPolicy,
    make_policy,
)


class TestEstablishedSet:
    def test_contains_establishment_blocks(self):
        cache_set = established_set(LruPolicy(4))
        assert cache_set.resident_tags() == {0, 1, 2, 3}

    def test_deterministic(self):
        a = established_set(PlruPolicy(4))
        b = established_set(PlruPolicy(4))
        assert a.state_key() == b.state_key()


class TestResponse:
    def test_known_lru_response(self):
        assert response(LruPolicy(2), [0, 1, 5, 0]) == (True, True, False, False)

    def test_miss_count_consistent(self):
        probe = [0, 1, 5, 0, 6]
        outcomes = response(LruPolicy(2), probe)
        assert miss_count(LruPolicy(2), probe) == sum(1 for h in outcomes if not h)


class TestBfsSearch:
    def test_lru_vs_fifo_short_sequence(self):
        probe = bfs_distinguishing_sequence(LruPolicy(2), FifoPolicy(2))
        assert probe is not None
        assert len(probe) <= 4
        assert response(LruPolicy(2), probe) != response(FifoPolicy(2), probe)

    def test_equivalent_policies_yield_none(self):
        # PLRU(2) and LRU(2) are the same policy.
        assert bfs_distinguishing_sequence(PlruPolicy(2), LruPolicy(2)) is None

    def test_plru_vs_lru_found(self):
        probe = bfs_distinguishing_sequence(PlruPolicy(4), LruPolicy(4))
        assert probe is not None
        assert response(PlruPolicy(4), probe) != response(LruPolicy(4), probe)

    def test_ways_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bfs_distinguishing_sequence(LruPolicy(2), LruPolicy(4))


class TestRandomSearch:
    @pytest.mark.parametrize(
        "first,second",
        [
            ("lru", "fifo"),
            ("lru", "plru"),
            ("bitplru", "nru"),
            ("qlru_h00_m1", "qlru_h00_m2"),
            ("srrip", "lru"),
        ],
    )
    def test_finds_discriminator(self, first, second):
        probe = random_distinguishing_sequence(
            make_policy(first, 4), make_policy(second, 4)
        )
        assert probe is not None
        assert miss_count(make_policy(first, 4), probe) != miss_count(
            make_policy(second, 4), probe
        )

    def test_identical_policies_yield_none(self):
        probe = random_distinguishing_sequence(
            LruPolicy(4), LruPolicy(4), tries=50, length=20
        )
        assert probe is None

    def test_truncation_keeps_discrimination(self):
        probe = random_distinguishing_sequence(LruPolicy(4), FifoPolicy(4))
        # The returned prefix must already discriminate by miss count.
        assert miss_count(LruPolicy(4), probe) != miss_count(FifoPolicy(4), probe)
